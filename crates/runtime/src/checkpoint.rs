//! Durable checkpoints: the committed state of the anonymizer at one WAL
//! sequence number.
//!
//! A checkpoint file `checkpoint-<seq>.ckpt` holds the location database
//! snapshot and the committed [`BulkPolicy`] as of WAL record `seq`, plus
//! the runtime parameters (k, map, epoch) needed to resume. The spatial
//! tree and DP matrix are *not* stored: both are deterministic functions
//! of the database (proved by the tree and core test suites), so recovery
//! rebuilds them — a checkpoint stays small and can never disagree with
//! its own database.
//!
//! Files are written atomically (temp file + fsync + rename) and never
//! modified afterwards. A corrupt generation degrades recovery to an
//! older one plus a longer WAL replay; the scrub pass quarantines files
//! that fail their CRC (renamed to `*.quarantined`, invisible to
//! listing), and retention GC prunes generations strictly older than the
//! newest *verified* checkpoint plus the WAL records it no longer needs
//! (DESIGN.md §14). All I/O flows through a [`StorageBackend`] so the
//! disk-fault sweeps can exercise every failure mode deterministically.

use crate::error::{io_err, RuntimeError};
use crate::storage::{real_fs, StorageBackend};
use crate::wal::crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use lbs_geom::Rect;
use lbs_model::{
    decode_policy, decode_snapshot, encode_policy, encode_snapshot, BulkPolicy, LocationDb,
};
use std::path::{Path, PathBuf};

const MAGIC: u32 = 0x4C42_5343; // "LBSC"
const VERSION: u32 = 1;

/// Extension appended to files the scrub pass quarantines; quarantined
/// files no longer match the checkpoint name shape, so every listing and
/// recovery path ignores them while the bytes stay on disk for forensics.
pub const QUARANTINE_SUFFIX: &str = "quarantined";

/// Committed runtime state as of one WAL sequence number.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Policy epoch at the checkpoint (count of commits so far).
    pub epoch: u64,
    /// WAL sequence number this state reflects: recovery replays records
    /// with `seq > wal_seq`.
    pub wal_seq: u64,
    /// Anonymity level the runtime was configured with.
    pub k: usize,
    /// The map every tree is built over.
    pub map: Rect,
    /// Location database at `wal_seq`.
    pub db: LocationDb,
    /// Committed policy at `wal_seq`.
    pub policy: BulkPolicy,
}

/// Canonical file name for the checkpoint at `seq`.
pub fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:012}.ckpt"))
}

fn seq_of(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let middle = name.strip_prefix("checkpoint-")?.strip_suffix(".ckpt")?;
    middle.parse().ok()
}

/// Serializes a checkpoint (trailing CRC included).
pub fn encode_checkpoint(ckpt: &Checkpoint) -> Bytes {
    let db_bytes = encode_snapshot(&ckpt.db);
    let policy_bytes = encode_policy(&ckpt.policy);
    let mut buf = BytesMut::with_capacity(64 + db_bytes.len() + policy_bytes.len());
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(ckpt.epoch);
    buf.put_u64_le(ckpt.wal_seq);
    buf.put_u64_le(ckpt.k as u64);
    buf.put_i64_le(ckpt.map.x0);
    buf.put_i64_le(ckpt.map.y0);
    buf.put_i64_le(ckpt.map.x1);
    buf.put_i64_le(ckpt.map.y1);
    buf.put_u64_le(db_bytes.len() as u64);
    buf.put_slice(&db_bytes);
    buf.put_u64_le(policy_bytes.len() as u64);
    buf.put_slice(&policy_bytes);
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf.freeze()
}

/// Decodes and validates a checkpoint buffer.
///
/// # Errors
/// [`RuntimeError::CorruptCheckpoint`] (with `path` for context) on any
/// structural problem: truncation, bad magic/version, CRC mismatch, or a
/// corrupt inner snapshot/policy.
pub fn decode_checkpoint(raw: &[u8], path: &Path) -> Result<Checkpoint, RuntimeError> {
    let corrupt =
        |message: String| RuntimeError::CorruptCheckpoint { path: path.to_path_buf(), message };
    if raw.len() < 64 + 4 {
        return Err(corrupt(format!("truncated: {} bytes", raw.len())));
    }
    let (body, tail) = raw.split_at(raw.len() - 4);
    let want_crc = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    if crc32(body) != want_crc {
        return Err(corrupt("checksum mismatch".into()));
    }
    let mut buf = Bytes::copy_from_slice(body);
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(corrupt(format!("bad magic {magic:#x}")));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let epoch = buf.get_u64_le();
    let wal_seq = buf.get_u64_le();
    let k = usize::try_from(buf.get_u64_le()).map_err(|_| corrupt("k overflows usize".into()))?;
    let map = Rect::new(buf.get_i64_le(), buf.get_i64_le(), buf.get_i64_le(), buf.get_i64_le());
    let db_len = buf.get_u64_le() as usize;
    if buf.remaining() < db_len + 8 {
        return Err(corrupt("truncated database section".into()));
    }
    let db_bytes = buf.split_to(db_len);
    let policy_len = buf.get_u64_le() as usize;
    if buf.remaining() != policy_len {
        return Err(corrupt(format!(
            "expected {policy_len} policy bytes, found {}",
            buf.remaining()
        )));
    }
    let db = decode_snapshot(db_bytes).map_err(|e| corrupt(format!("database: {e}")))?;
    let policy = decode_policy(buf).map_err(|e| corrupt(format!("policy: {e}")))?;
    Ok(Checkpoint { epoch, wal_seq, k, map, db, policy })
}

/// Cheap structural verification: minimum length, trailing CRC over the
/// body, magic, and version — everything scrub and GC need to classify a
/// generation as clean without paying for a full snapshot decode.
pub fn verify_checkpoint_bytes(raw: &[u8]) -> bool {
    if raw.len() < 64 + 4 {
        return false;
    }
    let (body, tail) = raw.split_at(raw.len() - 4);
    if crc32(body) != u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]) {
        return false;
    }
    u32::from_le_bytes([body[0], body[1], body[2], body[3]]) == MAGIC
        && u32::from_le_bytes([body[4], body[5], body[6], body[7]]) == VERSION
}

/// Writes a checkpoint atomically on the real filesystem. See
/// [`write_checkpoint_via`].
///
/// # Errors
/// [`RuntimeError::Io`] on filesystem failure;
/// [`RuntimeError::FaultInjected`] when `torn` fired.
pub fn write_checkpoint(
    dir: &Path,
    ckpt: &Checkpoint,
    torn: bool,
) -> Result<PathBuf, RuntimeError> {
    write_checkpoint_via(real_fs().as_ref(), dir, ckpt, torn)
}

/// Writes a checkpoint atomically through `storage`: temp file, fsync,
/// rename. When `torn` is set (fault injection), only a prefix of the
/// bytes is written and the temp file is left behind *without* renaming —
/// exactly the on-disk state of a crash mid-checkpoint.
///
/// # Errors
/// [`RuntimeError::Io`] on storage failure (injected disk faults
/// included); [`RuntimeError::FaultInjected`] when `torn` fired.
pub fn write_checkpoint_via(
    storage: &dyn StorageBackend,
    dir: &Path,
    ckpt: &Checkpoint,
    torn: bool,
) -> Result<PathBuf, RuntimeError> {
    let bytes = encode_checkpoint(ckpt);
    let final_path = checkpoint_path(dir, ckpt.wal_seq);
    let tmp_path = final_path.with_extension("ckpt.tmp");
    let mut file = storage.create(&tmp_path).map_err(|e| io_err("create", &tmp_path, e))?;
    if torn {
        let cut = bytes.len() / 2;
        file.write_all(&bytes[..cut]).map_err(|e| io_err("write", &tmp_path, e))?;
        let _ = file.sync();
        return Err(RuntimeError::FaultInjected(format!(
            "crash mid-checkpoint at seq {}",
            ckpt.wal_seq
        )));
    }
    file.write_all(&bytes).map_err(|e| io_err("write", &tmp_path, e))?;
    file.sync().map_err(|e| io_err("sync", &tmp_path, e))?;
    drop(file);
    storage.rename(&tmp_path, &final_path).map_err(|e| io_err("rename", &tmp_path, e))?;
    Ok(final_path)
}

/// Lists checkpoint files in `dir` on the real filesystem, newest
/// (highest seq) first. See [`list_checkpoints_via`].
///
/// # Errors
/// [`RuntimeError::Io`] when the directory cannot be read.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, RuntimeError> {
    list_checkpoints_via(real_fs().as_ref(), dir)
}

/// Lists checkpoint files in `dir` through `storage`, newest (highest
/// seq) first. Temp files from torn writes and quarantined files are
/// ignored — neither matches the `checkpoint-<seq>.ckpt` shape.
///
/// # Errors
/// [`RuntimeError::Io`] when the directory cannot be read.
pub fn list_checkpoints_via(
    storage: &dyn StorageBackend,
    dir: &Path,
) -> Result<Vec<(u64, PathBuf)>, RuntimeError> {
    let entries = storage.list(dir).map_err(|e| io_err("read_dir", dir, e))?;
    let mut found = Vec::new();
    for path in entries {
        if let Some(seq) = seq_of(&path) {
            found.push((seq, path));
        }
    }
    found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    Ok(found)
}

/// Renames `path` out of the checkpoint namespace (appending
/// `.quarantined`) so recovery and GC never consider it again, while the
/// corrupt bytes stay on disk for forensics. Returns the new path.
///
/// # Errors
/// [`RuntimeError::Io`] when the rename fails.
pub fn quarantine(storage: &dyn StorageBackend, path: &Path) -> Result<PathBuf, RuntimeError> {
    let mut name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    name.push('.');
    name.push_str(QUARANTINE_SUFFIX);
    let target = path.with_file_name(name);
    storage.rename(path, &target).map_err(|e| io_err("quarantine", path, e))?;
    Ok(target)
}

/// What [`load_latest_via`] found: the newest structurally valid
/// checkpoint (if any) and the newer generations it had to skip because
/// they failed validation — each skip is a generation fallback the
/// caller should surface in metrics.
#[derive(Debug)]
pub struct LoadOutcome {
    /// The newest checkpoint that decoded cleanly.
    pub checkpoint: Option<Checkpoint>,
    /// Corrupt (unreadable or CRC-failing) checkpoint files skipped on
    /// the way down, newest first.
    pub skipped: Vec<PathBuf>,
}

/// Loads the newest structurally valid checkpoint on the real
/// filesystem. See [`load_latest_via`].
///
/// # Errors
/// [`RuntimeError::Io`] on directory or file read failure.
pub fn load_latest(dir: &Path) -> Result<Option<Checkpoint>, RuntimeError> {
    Ok(load_latest_via(real_fs().as_ref(), dir)?.checkpoint)
}

/// Loads the newest structurally valid checkpoint through `storage`,
/// skipping corrupt ones (a skipped generation only means a longer WAL
/// replay — retention GC never prunes records a retained generation
/// still needs). Returns the checkpoint plus the skipped corrupt paths.
///
/// # Errors
/// [`RuntimeError::Io`] on directory or file read failure.
pub fn load_latest_via(
    storage: &dyn StorageBackend,
    dir: &Path,
) -> Result<LoadOutcome, RuntimeError> {
    let mut skipped = Vec::new();
    for (_, path) in list_checkpoints_via(storage, dir)? {
        let raw = storage.read(&path).map_err(|e| io_err("read", &path, e))?;
        match decode_checkpoint(&raw, &path) {
            Ok(ckpt) => return Ok(LoadOutcome { checkpoint: Some(ckpt), skipped }),
            Err(RuntimeError::CorruptCheckpoint { .. }) => skipped.push(path),
            Err(other) => return Err(other),
        }
    }
    Ok(LoadOutcome { checkpoint: None, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_geom::Point;
    use lbs_model::UserId;

    fn sample(wal_seq: u64) -> Checkpoint {
        let db = LocationDb::from_rows(
            (0..8).map(|i| (UserId(i), Point::new(i as i64 * 3, 7 - i as i64))),
        )
        .unwrap();
        let mut policy = BulkPolicy::new("test-policy");
        for i in 0..8 {
            policy.assign(UserId(i), Rect::square(0, 0, 32).into());
        }
        Checkpoint { epoch: 4, wal_seq, k: 3, map: Rect::square(0, 0, 32), db, policy }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lbs-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ckpt = sample(17);
        let bytes = encode_checkpoint(&ckpt);
        let back = decode_checkpoint(&bytes, Path::new("x")).unwrap();
        assert_eq!(back.epoch, 4);
        assert_eq!(back.wal_seq, 17);
        assert_eq!(back.k, 3);
        assert_eq!(back.map, ckpt.map);
        assert_eq!(encode_snapshot(&back.db), encode_snapshot(&ckpt.db));
        assert_eq!(encode_policy(&back.policy), encode_policy(&ckpt.policy));
    }

    #[test]
    fn every_truncation_and_any_bitflip_is_rejected() {
        let bytes = encode_checkpoint(&sample(1));
        for cut in 0..bytes.len() {
            assert!(
                decode_checkpoint(&bytes[..cut], Path::new("x")).is_err(),
                "truncation at {cut} accepted"
            );
        }
        for idx in [0, 5, 20, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.to_vec();
            bad[idx] ^= 0x01;
            assert!(decode_checkpoint(&bad, Path::new("x")).is_err(), "bitflip at {idx} accepted");
        }
    }

    #[test]
    fn load_latest_skips_corrupt_and_torn_files() {
        let dir = tmp_dir("skip");
        write_checkpoint(&dir, &sample(3), false).unwrap();
        write_checkpoint(&dir, &sample(9), false).unwrap();
        // Corrupt the newest in place.
        let newest = checkpoint_path(&dir, 9);
        let mut raw = std::fs::read(&newest).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        std::fs::write(&newest, &raw).unwrap();
        // Plus a torn temp file from a crashed write of seq 12.
        assert!(matches!(
            write_checkpoint(&dir, &sample(12), true),
            Err(RuntimeError::FaultInjected(_))
        ));
        assert!(!checkpoint_path(&dir, 12).exists(), "torn write must not publish");

        let loaded = load_latest(&dir).unwrap().unwrap();
        assert_eq!(loaded.wal_seq, 3, "fell back past the corrupt newest checkpoint");
        // The via-variant names the generation it skipped.
        let outcome = load_latest_via(real_fs().as_ref(), &dir).unwrap();
        assert_eq!(outcome.checkpoint.as_ref().unwrap().wal_seq, 3);
        assert_eq!(outcome.skipped, vec![newest]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_has_no_state() {
        let dir = tmp_dir("empty");
        assert!(load_latest(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantined_files_vanish_from_listing_and_recovery() {
        let dir = tmp_dir("quarantine");
        write_checkpoint(&dir, &sample(2), false).unwrap();
        write_checkpoint(&dir, &sample(5), false).unwrap();
        let fs = real_fs();
        let target = quarantine(fs.as_ref(), &checkpoint_path(&dir, 5)).unwrap();
        assert!(target.to_string_lossy().ends_with(".ckpt.quarantined"));
        assert!(target.exists(), "quarantine keeps the bytes for forensics");
        let listed = list_checkpoints(&dir).unwrap();
        assert_eq!(listed.iter().map(|&(s, _)| s).collect::<Vec<_>>(), [2]);
        assert_eq!(load_latest(&dir).unwrap().unwrap().wal_seq, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
