//! The seeded scenario matrix: which databases, policies, and algorithms
//! the conformance harness exercises.
//!
//! Every scenario is a pure function of the **master seed** — the only
//! number a failure report needs to print for a bit-exact replay
//! (`derive_seed` gives each scenario an independent stream). The smoke
//! tier keeps instances small enough that the whole matrix (200+
//! instances) finishes well under a minute; the soak tier widens every
//! axis and is run behind `#[ignore]` / `--tier soak`.

use lbs_geom::Rect;
use lbs_model::LocationDb;
use lbs_tree::TreeKind;
use lbs_workload::{derive_seed, generate_master, uniform, BayAreaConfig};
use serde::{Deserialize, Serialize};

/// Default master seed of the checked-in corpus and the smoke CI stage.
pub const DEFAULT_MASTER_SEED: u64 = 0xC0F0_2026;

/// Spatial density profile of a scenario's location database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Density {
    /// i.i.d. uniform over the map (the Section-V complexity setting).
    Uniform,
    /// Bay-Area-style mixture: many Zipf-weighted clusters plus a rural
    /// background (the paper's evaluation workload, §VI).
    Skewed,
    /// A handful of tight clusters and nothing else — the adversarial
    /// case for tree balance and cloak growth.
    Clustered,
}

impl Density {
    /// All densities, matrix order.
    pub const ALL: [Density; 3] = [Density::Uniform, Density::Skewed, Density::Clustered];

    /// Stable lowercase name (scenario ids, golden file names).
    pub fn name(self) -> &'static str {
        match self {
            Density::Uniform => "uniform",
            Density::Skewed => "skewed",
            Density::Clustered => "clustered",
        }
    }

    /// Generates `users` locations on `map` under this profile, keyed by
    /// `seed` alone.
    pub fn generate(self, users: usize, map: Rect, seed: u64) -> LocationDb {
        match self {
            Density::Uniform => uniform(users, map, seed),
            Density::Skewed => generate_master(&BayAreaConfig {
                map_side: map.x1 - map.x0,
                intersections: (users / 4).max(1),
                users_per_intersection: 4,
                user_sigma_m: 12.0,
                clusters: 24,
                background_fraction: 0.05,
                seed,
            }),
            Density::Clustered => generate_master(&BayAreaConfig {
                map_side: map.x1 - map.x0,
                intersections: (users / 4).max(1),
                users_per_intersection: 4,
                user_sigma_m: 4.0,
                clusters: 3,
                background_fraction: 0.0,
                seed,
            }),
        }
    }
}

/// What a scenario runs and which oracle judges it.
///
/// Not serialized directly (the vendored serde stand-in has no struct
/// variant support); reports store [`Algorithm::name`] strings instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// `Bulk_dp` (fast, Lemma-5) over a binary (semi-quadrant) tree.
    BulkFastBinary,
    /// `Bulk_dp` restricted to the quad tree (the paper's Theorem-2
    /// setting), via the quad-specialized DP.
    BulkFastQuad,
    /// The dense reference DP — differentially checked against the fast
    /// one on the same tree.
    BulkDense,
    /// Per-user k requirements (a seeded quarter of users demand 2k).
    PerUserK,
    /// Sticky-cohort trajectory-defence anonymizer.
    Sticky,
    /// Incremental maintenance across seeded move rounds, compared
    /// against fresh rebuilds.
    Incremental,
    /// Work-stealing engine at a fixed worker count vs the sequential
    /// partitioned run (bit-identical or bust).
    Engine {
        /// Worker threads for the pool.
        workers: usize,
    },
    /// Work-stealing engine under a seeded [`lbs_parallel::FaultPlan`]
    /// with retries: must recover bit-identically.
    EngineFaulted {
        /// Worker threads for the pool.
        workers: usize,
        /// Seed of the fault plan (panics + stalls + worker delays).
        plan_seed: u64,
    },
    /// Casper-prototype k-inside baseline (expected breachable).
    Casper,
    /// Policy-unaware quad-tree k-inside baseline (expected breachable).
    KInsideQuad,
    /// Policy-unaware binary-tree k-inside baseline (expected
    /// breachable).
    KInsideBinary,
    /// Circular k-inside baseline (expected breachable).
    Circular,
    /// Tiny instance: brute-force optimality oracle + literal PRE
    /// enumeration (Definition 6 taken literally).
    TinyOracle,
    /// The paper's Example-1 construction: Casper on a Table-I-shaped
    /// database **must** exhibit a PRE breach.
    CraftedBreach,
}

impl Algorithm {
    /// Stable name for ids and reports.
    pub fn name(self) -> String {
        match self {
            Algorithm::BulkFastBinary => "bulk-fast-binary".into(),
            Algorithm::BulkFastQuad => "bulk-fast-quad".into(),
            Algorithm::BulkDense => "bulk-dense".into(),
            Algorithm::PerUserK => "per-user-k".into(),
            Algorithm::Sticky => "sticky".into(),
            Algorithm::Incremental => "incremental".into(),
            Algorithm::Engine { workers } => format!("engine-w{workers}"),
            Algorithm::EngineFaulted { workers, plan_seed } => {
                format!("engine-faulted-w{workers}-p{plan_seed}")
            }
            Algorithm::Casper => "baseline-casper".into(),
            Algorithm::KInsideQuad => "baseline-kinside-quad".into(),
            Algorithm::KInsideBinary => "baseline-kinside-binary".into(),
            Algorithm::Circular => "baseline-circular".into(),
            Algorithm::TinyOracle => "tiny-oracle".into(),
            Algorithm::CraftedBreach => "crafted-breach".into(),
        }
    }

    /// Whether the output is *expected* to withstand the policy-aware
    /// attacker. Baselines answer `false`: their breaches are recorded,
    /// not failed.
    pub fn policy_aware(self) -> bool {
        !matches!(
            self,
            Algorithm::Casper
                | Algorithm::KInsideQuad
                | Algorithm::KInsideBinary
                | Algorithm::Circular
                | Algorithm::CraftedBreach
        )
    }
}

/// One scheduled conformance run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Replayable id: `<density>/<algorithm>/k<k>/n<users>`.
    pub id: String,
    /// This scenario's derived seed (all of its randomness flows from
    /// it). Printed on failure.
    pub seed: u64,
    /// Database density profile.
    pub density: Density,
    /// Database size.
    pub users: usize,
    /// Anonymity level (the default level for per-user-k scenarios).
    pub k: usize,
    /// What to run.
    pub algorithm: Algorithm,
}

impl Scenario {
    /// The square power-of-two map the scenario lives on. Tiny-oracle
    /// instances use a 16 m map so the brute-force configuration space
    /// (and literal PRE product) stays enumerable.
    pub fn map(&self) -> Rect {
        match self.algorithm {
            Algorithm::TinyOracle => Rect::square(0, 0, 16),
            _ => Rect::square(0, 0, 1024),
        }
    }

    /// The scenario's database (pure function of its seed).
    pub fn database(&self) -> LocationDb {
        self.density.generate(self.users, self.map(), derive_seed(self.seed, 10))
    }

    /// The spatial-tree kind the scenario's algorithm works over.
    pub fn tree_kind(&self) -> TreeKind {
        match self.algorithm {
            Algorithm::BulkFastQuad | Algorithm::KInsideQuad => TreeKind::Quad,
            _ => TreeKind::Binary,
        }
    }
}

/// Matrix width: smoke (CI, < 60 s) or soak (`#[ignore]`-gated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tier {
    /// Small instances, ≥ 200 of them, time-budgeted for CI.
    Smoke,
    /// The same axes widened: more seeds, larger `|D|`, deeper fault
    /// soak.
    Soak,
}

fn push(
    out: &mut Vec<Scenario>,
    master: u64,
    density: Density,
    users: usize,
    k: usize,
    algorithm: Algorithm,
) {
    let id = format!("{}/{}/k{}/n{}", density.name(), algorithm.name(), k, users);
    // Stream the id itself so every cell of the matrix gets an
    // independent, collision-free seed under one master.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let seed = derive_seed(master, h);
    out.push(Scenario { id, seed, density, users, k, algorithm });
}

/// Users for a given k: enough population for every group shape to be
/// feasible without making the DP expensive.
fn users_for(k: usize) -> usize {
    (6 * k).clamp(48, 384)
}

/// Builds the full scenario matrix for `tier` under `master` seed.
///
/// The smoke tier covers: 3 densities × {Bulk fast binary/quad at
/// k ∈ {2..64}, dense DP, per-user-k, sticky, incremental, engine at
/// 1–8 workers} plus the baseline family, tiny PRE/optimality-oracle
/// instances, crafted Example-1 breaches, and seeded fault-soak runs —
/// 200+ instances total (asserted by the smoke test).
pub fn scenario_matrix(master: u64, tier: Tier) -> Vec<Scenario> {
    let mut out = Vec::new();
    let bulk_ks: &[usize] = match tier {
        Tier::Smoke => &[2, 4, 8, 16, 32, 64],
        Tier::Soak => &[2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64],
    };
    let mid_ks: &[usize] = match tier {
        Tier::Smoke => &[2, 4, 8, 16],
        Tier::Soak => &[2, 4, 8, 16, 32],
    };
    let engine_ks: &[usize] = match tier {
        Tier::Smoke => &[2, 4, 8],
        Tier::Soak => &[2, 4, 8, 16],
    };
    let engine_workers: &[usize] = &[1, 2, 4, 8];

    for density in Density::ALL {
        for &k in bulk_ks {
            push(&mut out, master, density, users_for(k), k, Algorithm::BulkFastBinary);
            push(&mut out, master, density, users_for(k), k, Algorithm::BulkFastQuad);
        }
        for &k in &[2usize, 4, 8] {
            push(&mut out, master, density, 48, k, Algorithm::BulkDense);
        }
        for &k in mid_ks {
            push(&mut out, master, density, users_for(k), k, Algorithm::PerUserK);
            push(&mut out, master, density, users_for(k), k, Algorithm::Sticky);
            push(&mut out, master, density, users_for(k), k, Algorithm::Incremental);
            push(&mut out, master, density, users_for(k), k, Algorithm::Casper);
            push(&mut out, master, density, users_for(k), k, Algorithm::KInsideQuad);
            push(&mut out, master, density, users_for(k), k, Algorithm::KInsideBinary);
            push(&mut out, master, density, users_for(k), k, Algorithm::Circular);
        }
        for &k in engine_ks {
            for &workers in engine_workers {
                push(&mut out, master, density, 192, k, Algorithm::Engine { workers });
            }
        }
        // Tiny instances where the exponential oracles are feasible.
        for users in [4usize, 5, 6] {
            for k in [2usize, 3] {
                push(&mut out, master, density, users, k, Algorithm::TinyOracle);
            }
        }
    }

    // Crafted Example-1 breach reproductions (density tag is nominal;
    // the database is the Table-I construction, scaled per variant).
    for variant in 0..4usize {
        push(&mut out, master, Density::Clustered, 5, 2, Algorithm::CraftedBreach);
        // Distinguish the ids (push derives the seed from the id).
        // lbs-lint: allow(no-unwrap-in-lib, reason = "push() appended an element on the previous line, so last_mut() is Some")
        let last = out.last_mut().expect("just pushed");
        last.id = format!("{}#v{variant}", last.id);
        last.seed = derive_seed(last.seed, variant as u64 + 1);
    }

    // Fault-injected engine soak: seeded plans over the jurisdiction
    // task set, recovery must be bit-identical.
    let soak_plans: u64 = match tier {
        Tier::Smoke => 16,
        Tier::Soak => 64,
    };
    for plan in 0..soak_plans {
        let workers = [2usize, 3, 4, 8][(plan % 4) as usize];
        push(
            &mut out,
            master,
            Density::ALL[(plan % 3) as usize],
            192,
            4 + 4 * (plan % 3) as usize,
            Algorithm::EngineFaulted { workers, plan_seed: plan },
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_has_at_least_200_instances() {
        let matrix = scenario_matrix(DEFAULT_MASTER_SEED, Tier::Smoke);
        assert!(matrix.len() >= 200, "only {} scenarios", matrix.len());
        let soak = scenario_matrix(DEFAULT_MASTER_SEED, Tier::Soak);
        assert!(soak.len() > matrix.len(), "soak must widen the matrix");
    }

    #[test]
    fn scenario_ids_and_seeds_are_unique_and_deterministic() {
        let a = scenario_matrix(7, Tier::Smoke);
        let b = scenario_matrix(7, Tier::Smoke);
        let mut ids = std::collections::HashSet::new();
        let mut seeds = std::collections::HashSet::new();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.seed, y.seed);
            assert!(ids.insert(x.id.clone()), "duplicate id {}", x.id);
            assert!(seeds.insert(x.seed), "duplicate seed for {}", x.id);
        }
        let c = scenario_matrix(8, Tier::Smoke);
        assert!(a.iter().zip(&c).any(|(x, y)| x.seed != y.seed), "master seed must matter");
    }

    #[test]
    fn databases_are_replayable_from_the_scenario_seed() {
        let matrix = scenario_matrix(3, Tier::Smoke);
        let s = &matrix[0];
        let a = s.database();
        let b = s.database();
        assert_eq!(a.len(), s.users);
        for (u, p) in a.iter() {
            assert_eq!(b.location(u), Some(p));
        }
    }

    #[test]
    fn densities_have_distinct_shapes() {
        let map = Rect::square(0, 0, 1024);
        let u = Density::Uniform.generate(256, map, 1);
        let c = Density::Clustered.generate(256, map, 1);
        assert_eq!(u.len(), 256);
        assert_eq!(c.len(), 256);
        // Clustered mass concentrates *locally* (clusters may still be
        // spread across the map, so centroid spread is useless). Proxy:
        // mean nearest-neighbour distance, which is tiny under sigma-4
        // clustering and ~32 m for 256 uniform users on a 1024 m map.
        let mean_nn = |db: &LocationDb| {
            let pts: Vec<(f64, f64)> = db.iter().map(|(_, p)| (p.x as f64, p.y as f64)).collect();
            let mut total = 0.0f64;
            for (i, a) in pts.iter().enumerate() {
                let mut best = f64::INFINITY;
                for (j, b) in pts.iter().enumerate() {
                    if i != j {
                        let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
                        best = best.min(d);
                    }
                }
                total += best;
            }
            total / pts.len() as f64
        };
        assert!(
            mean_nn(&c) < mean_nn(&u) / 2.0,
            "clustered should be locally much tighter than uniform (nn {} vs {})",
            mean_nn(&c),
            mean_nn(&u)
        );
    }
}
