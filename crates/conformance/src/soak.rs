//! Deterministic sustained-traffic soak of the sharded service.
//!
//! One seeded loop drives a Bay-Area-model population through the
//! sharded runtime: every simulated second (one virtual-clock tick) a
//! batch of random user movements is epoch-pipelined through
//! [`ShardedRuntime::pump`] and a wave of cloaked queries is served
//! against per-request deadlines that already expired — exactly the
//! regime where the degradation ladder, not a fresh commit, answers.
//! Seeded per-shard crashes are injected mid-traffic; the soak asserts
//!
//! 1. **No global stall** — while shard *i* is down, queries routed to
//!    every other shard keep being served, and traffic for up shards
//!    keeps committing; only shard *i*'s own senders are refused.
//! 2. **No anonymity breach** — on an audit cadence, every sender is
//!    queried and the union of served cloaks faces the full oracle
//!    stack (`verify_policy_aware` plus the PRE-enumerating attacker)
//!    over the served population.
//! 3. **Bounded divergence** — after a final drain, the sharded
//!    aggregate cloak cost is within the paper's Section V bound
//!    (≤ 1% by default) of the single-shard optimum recomputed over the
//!    same final population, and the merged shard databases are exactly
//!    the mirror the traffic generator maintained.
//!
//! The whole run is a pure function of [`SoakConfig`]: the same config
//! produces a bit-identical [`SoakReport`] fingerprint, so a red soak
//! replays from its printed seed.

use lbs_attack::audit_policy;
use lbs_core::{verify_policy_aware, Anonymizer};
use lbs_geom::Point;
use lbs_metrics::{Counter, Metrics};
use lbs_model::{BulkPolicy, LocationDb, UserId, UserUpdate};
use lbs_runtime::{divergence_pct, ManualClock, Rung, RuntimeError, ShardedBuilder, ShardedConfig};
use lbs_workload::{derive_seed, generate_master, random_moves, BayAreaConfig};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// One seeded mid-traffic shard crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoakCrash {
    /// Epoch (0-based) at whose start the shard's in-memory state is
    /// dropped. Disk (WAL + checkpoints) stays intact, like a process
    /// kill.
    pub epoch: u64,
    /// Which shard dies.
    pub shard: usize,
    /// Epochs the shard stays down before recovery; its senders are
    /// refused and its region receives no traffic meanwhile.
    pub down_for: u64,
}

/// Parameters of one soak run. Everything downstream — population,
/// movement, query waves, crash schedule — derives from `seed`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoakConfig {
    /// Master seed.
    pub seed: u64,
    /// Approximate population (rounded by the workload generator).
    pub users: usize,
    /// Shard count requested (the plan may hold fewer).
    pub shards: usize,
    /// Anonymity level.
    pub k: usize,
    /// Simulated seconds (one pump + one query wave each).
    pub epochs: u64,
    /// Fraction of the population moving per epoch (paper Figure 5(b)).
    pub move_fraction: f64,
    /// Maximum per-epoch movement in meters.
    pub max_move_m: f64,
    /// Sampled cloak queries per epoch.
    pub queries_per_epoch: usize,
    /// Crash schedule (validated against `shards` and `epochs`).
    pub crashes: Vec<SoakCrash>,
    /// Full-population attacker audit every this many epochs (0 = only
    /// the final audit).
    pub audit_every: u64,
    /// Virtual milliseconds per epoch tick.
    pub tick_ms: u64,
    /// Maximum tolerated cost divergence from the single-shard optimum,
    /// in percent (the paper's Section V bound is 1%).
    pub divergence_bound_pct: f64,
    /// Per-shard checkpoint cadence (commits per checkpoint). Low values
    /// pile up checkpoint generations, which the heavy tier uses to
    /// exercise retention.
    pub checkpoint_every: u64,
    /// Per-shard bounded retention: keep this many verified checkpoint
    /// generations and GC the rest (`None` keeps every generation).
    pub retain_checkpoints: Option<usize>,
    /// Run a scrub + GC pass across every up shard each this many
    /// epochs (0 = never). On a healthy disk the scrub must quarantine
    /// nothing; anything else is a soak failure.
    pub scrub_every: u64,
}

impl SoakConfig {
    /// CI-sized smoke soak: a few hundred users, 2 shards, one seeded
    /// mid-traffic crash, a handful of simulated seconds.
    pub fn smoke() -> SoakConfig {
        SoakConfig {
            seed: 0x50AC_0001,
            users: 600,
            shards: 2,
            k: 4,
            epochs: 10,
            move_fraction: 0.05,
            max_move_m: 400.0,
            queries_per_epoch: 48,
            crashes: vec![SoakCrash { epoch: 4, shard: 1, down_for: 2 }],
            audit_every: 3,
            tick_ms: 1000,
            divergence_bound_pct: 1.0,
            checkpoint_every: 4,
            retain_checkpoints: None,
            scrub_every: 0,
        }
    }

    /// The nightly heavy tier (the ROADMAP's "multiple checkpoint
    /// generations" soak): a mid-sized population driven long enough
    /// that every shard accumulates several checkpoint generations
    /// (cadence 1) under bounded retention, with a scrub + GC pass
    /// running mid-traffic every few epochs and two mid-run shard
    /// crashes recovering across the pruned lineage. Minutes of CPU —
    /// sized for `scripts/nightly.sh`, not per-commit CI.
    pub fn heavy() -> SoakConfig {
        SoakConfig {
            seed: 0x50AC_4EA7,
            users: 20_000,
            shards: 4,
            k: 8,
            epochs: 18,
            move_fraction: 0.04,
            max_move_m: 300.0,
            queries_per_epoch: 1_500,
            crashes: vec![
                SoakCrash { epoch: 5, shard: 1, down_for: 2 },
                SoakCrash { epoch: 11, shard: 3, down_for: 3 },
            ],
            audit_every: 6,
            tick_ms: 1000,
            divergence_bound_pct: 1.0,
            checkpoint_every: 1,
            retain_checkpoints: Some(3),
            scrub_every: 4,
        }
    }

    /// The paper-scale soak: the full ~1.75M-user Bay Area master set,
    /// tens of thousands of moving users and queries per simulated
    /// second, crashes on several shards. Hours of CPU — not for CI.
    pub fn full() -> SoakConfig {
        SoakConfig {
            seed: 0x50AC_FFFF,
            users: 1_750_000,
            shards: 8,
            k: 20,
            epochs: 30,
            move_fraction: 0.02,
            max_move_m: 200.0,
            queries_per_epoch: 50_000,
            crashes: vec![
                SoakCrash { epoch: 7, shard: 2, down_for: 3 },
                SoakCrash { epoch: 15, shard: 5, down_for: 2 },
            ],
            audit_every: 10,
            tick_ms: 1000,
            divergence_bound_pct: 1.0,
            checkpoint_every: 4,
            retain_checkpoints: None,
            scrub_every: 0,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.users == 0 || self.epochs == 0 || self.shards == 0 || self.k == 0 {
            return Err("users, epochs, shards, and k must all be nonzero".into());
        }
        if !(0.0..=1.0).contains(&self.move_fraction) {
            return Err(format!("move_fraction {} outside [0, 1]", self.move_fraction));
        }
        if self.tick_ms == 0 {
            return Err("tick_ms must be nonzero (the clock must advance)".into());
        }
        for c in &self.crashes {
            if c.shard >= self.shards {
                return Err(format!("crash shard {} out of range 0..{}", c.shard, self.shards));
            }
            if c.down_for == 0 {
                return Err(format!("crash at epoch {} has down_for 0", c.epoch));
            }
            if c.epoch >= self.epochs {
                return Err(format!(
                    "crash epoch {} beyond the run's {} epochs",
                    c.epoch, self.epochs
                ));
            }
        }
        Ok(())
    }
}

/// What one soak run did and found.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoakReport {
    /// The run's configuration.
    pub config: SoakConfig,
    /// Shards the plan actually produced.
    pub shards: usize,
    /// Final population size.
    pub population: usize,
    /// Movement updates pumped (after per-user dedup and down-shard
    /// withholding).
    pub updates_applied: usize,
    /// Cross-shard migrations performed.
    pub migrations: u64,
    /// Sampled queries answered, by rung.
    pub served_fresh: usize,
    /// Queries answered from the last committed policy.
    pub served_committed: usize,
    /// Queries answered with a coarsened ancestor cloak.
    pub served_coarsened: usize,
    /// Queries shed by the ladder's bottom rung.
    pub shed: usize,
    /// Queries served on *other* shards while at least one shard was
    /// down — the no-global-stall witness.
    pub served_during_crash: usize,
    /// Queries refused because their own shard was down.
    pub unavailable_during_crash: usize,
    /// Crashes injected.
    pub crashes_injected: usize,
    /// Shard recoveries performed (every crash must recover).
    pub recoveries: usize,
    /// WAL records replayed across all recoveries.
    pub replayed_total: usize,
    /// Mid-traffic scrub passes run across up shards (heavy tier).
    pub scrubs: usize,
    /// Total WAL records pruned by retention GC — both the automatic
    /// post-checkpoint passes the runtime runs whenever retention is
    /// bounded and the explicit mid-traffic passes at the scrub cadence.
    pub wal_records_pruned: u64,
    /// Checkpoint generations removed by the *explicit* mid-traffic GC
    /// passes. Usually 0 when retention is bounded: the automatic
    /// post-checkpoint GC keeps the lineage trimmed continuously, so the
    /// explicit pass finds nothing left to remove. The retention bound
    /// itself is asserted on disk at every scrub cadence instead.
    pub checkpoints_removed: usize,
    /// Full-population attacker audits run.
    pub audits: usize,
    /// Anonymity breaches found by any audit (must be 0).
    pub breaches: usize,
    /// Final sharded aggregate cloak cost.
    pub sharded_cost: u128,
    /// Single-shard optimal cost over the same final population.
    pub single_cost: u128,
    /// `100 · (sharded − single) / single`.
    pub divergence_pct: f64,
    /// FNV-1a digest of the run's observable outcome; identical for
    /// identical configs.
    pub fingerprint: u64,
    /// Invariant violations (empty on a clean run).
    pub failures: Vec<String>,
}

impl SoakReport {
    /// Whether every soak invariant held.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for SoakReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "soak: seed {:#x}, {} users on {} shards, {} epochs — {}",
            self.config.seed,
            self.population,
            self.shards,
            self.config.epochs,
            if self.is_clean() { "clean" } else { "FAILURES" },
        )?;
        writeln!(
            f,
            "  traffic: {} updates ({} migrations), queries fresh {} / committed {} / \
             coarsened {} / shed {}",
            self.updates_applied,
            self.migrations,
            self.served_fresh,
            self.served_committed,
            self.served_coarsened,
            self.shed,
        )?;
        writeln!(
            f,
            "  crashes: {} injected, {} recovered ({} records replayed); during outages \
             {} served elsewhere, {} refused locally",
            self.crashes_injected,
            self.recoveries,
            self.replayed_total,
            self.served_during_crash,
            self.unavailable_during_crash,
        )?;
        if self.scrubs > 0 || self.wal_records_pruned > 0 {
            writeln!(
                f,
                "  self-healing: {} scrub passes (all clean), retention GC pruned \
                 {} WAL records ({} generations via explicit passes)",
                self.scrubs, self.wal_records_pruned, self.checkpoints_removed,
            )?;
        }
        writeln!(
            f,
            "  oracle: {} audits, {} breaches; cost {} vs single-shard {} \
             ({:+.4}% divergence, bound {:.2}%)",
            self.audits,
            self.breaches,
            self.sharded_cost,
            self.single_cost,
            self.divergence_pct,
            self.config.divergence_bound_pct,
        )?;
        writeln!(f, "  fingerprint: {:#018x}", self.fingerprint)?;
        for failure in &self.failures {
            writeln!(f, "  FAIL {failure}")?;
        }
        Ok(())
    }
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= u64::from(*b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Runs one soak under `scratch` (a disposable directory; the sharded
/// service state it creates is removed before returning).
///
/// # Errors
/// A message when the harness itself cannot run (invalid config, the
/// service failing to build). Invariant violations observed *during* a
/// run land in [`SoakReport::failures`] instead.
// lbs-lint: allow-item(location-taint, reason = "the failure log records counters, user ids, and runtime error strings; error strings are coordinate-free by construction (this lint enforces that at every construction site) and the report is an operator artifact inside the trust boundary")
pub fn soak(scratch: &Path, cfg: &SoakConfig) -> Result<SoakReport, String> {
    cfg.validate()?;
    let dir = scratch.join(format!("soak-{:016x}", cfg.seed));
    let _ = std::fs::remove_dir_all(&dir);

    // Population: the paper's Bay Area model, scaled to the configured
    // size, its master seed derived from the soak seed (stream 1).
    let mut workload = BayAreaConfig::scaled_to(cfg.users);
    workload.seed = derive_seed(cfg.seed, 1);
    let map = workload.map();
    let db0 = generate_master(&workload);
    let mut mirror = db0.clone();

    let clock = Arc::new(ManualClock::new());
    let metrics = Arc::new(Metrics::new());
    let mut shard_cfg = ShardedConfig::new(cfg.k, map, cfg.shards);
    shard_cfg.checkpoint_every = cfg.checkpoint_every;
    shard_cfg.retain_checkpoints = cfg.retain_checkpoints;
    let mut rt = ShardedBuilder::new(shard_cfg)
        .clock(Arc::clone(&clock) as Arc<dyn lbs_runtime::Clock>)
        .metrics(Arc::clone(&metrics))
        .create(&dir, &db0)
        .map_err(|e| format!("create sharded service: {e}"))?;

    let mut report = SoakReport {
        config: cfg.clone(),
        shards: rt.shard_count(),
        population: db0.len(),
        updates_applied: 0,
        migrations: 0,
        served_fresh: 0,
        served_committed: 0,
        served_coarsened: 0,
        shed: 0,
        served_during_crash: 0,
        unavailable_during_crash: 0,
        crashes_injected: 0,
        recoveries: 0,
        replayed_total: 0,
        scrubs: 0,
        wal_records_pruned: 0,
        checkpoints_removed: 0,
        audits: 0,
        breaches: 0,
        sharded_cost: 0,
        single_cost: 0,
        divergence_pct: 0.0,
        fingerprint: 0xcbf2_9ce4_8422_2325,
        failures: Vec::new(),
    };

    // Recovery schedule: epoch → shards coming back up at its start.
    let mut recover_at: Vec<(u64, usize)> =
        cfg.crashes.iter().map(|c| (c.epoch + c.down_for, c.shard)).collect();
    recover_at.sort_unstable();

    let users_sorted: Vec<UserId> = {
        let mut v: Vec<UserId> = db0.users().collect();
        v.sort_unstable();
        v
    };

    for epoch in 0..cfg.epochs {
        clock.advance(Duration::from_millis(cfg.tick_ms));

        // Recoveries due at this epoch's start (also past-due ones, so a
        // crash schedule reaching beyond the loop still settles below).
        for &(when, shard) in &recover_at {
            if when == epoch {
                match rt.recover_shard(shard) {
                    Ok(rec) => {
                        report.recoveries += 1;
                        report.replayed_total += rec.replayed;
                    }
                    Err(e) => report
                        .failures
                        .push(format!("epoch {epoch}: recovering shard {shard} failed: {e}")),
                }
            }
        }

        // Crashes scheduled mid-traffic at this epoch.
        for c in &cfg.crashes {
            if c.epoch == epoch {
                match rt.crash_shard(c.shard) {
                    Ok(()) => report.crashes_injected += 1,
                    Err(e) => report
                        .failures
                        .push(format!("epoch {epoch}: crashing shard {} failed: {e}", c.shard)),
                }
            }
        }
        let any_down = !rt.all_up();

        // Movement wave. Senders on a down shard (or headed into its
        // region) hold still this epoch — their updates are withheld
        // from both the service and the mirror, so parity is exact and
        // no other shard's traffic stalls.
        let moves = random_moves(
            &mirror,
            &map,
            cfg.move_fraction,
            cfg.max_move_m,
            derive_seed(cfg.seed, 100 + epoch),
        );
        let batch: Vec<UserUpdate> = moves
            .into_iter()
            .filter(|m| {
                let src_up = rt.shard_of(m.user).map(|s| rt.shard(s).is_some());
                let dst_up = rt.plan().route_point(&m.to).map(|s| rt.shard(s).is_some());
                src_up == Some(true) && dst_up == Some(true)
            })
            .map(UserUpdate::Move)
            .collect();
        mirror.apply_updates(&batch).map_err(|e| format!("epoch {epoch}: mirror: {e:?}"))?;
        match rt.pump(&batch) {
            Ok(pump) => {
                report.updates_applied += batch.len();
                report.migrations += pump.migrations;
            }
            Err(e) => report.failures.push(format!("epoch {epoch}: pump: {e}")),
        }

        // Query wave: sampled senders, each under an already-expired
        // deadline so the answer comes from the ladder, never from an
        // inline commit (the pipeline stays one epoch deep).
        let expired = Some(Duration::from_millis(1));
        for j in 0..cfg.queries_per_epoch as u64 {
            let pick = derive_seed(cfg.seed, 1_000_000 + epoch * 131_071 + j) as usize
                % users_sorted.len();
            let user = users_sorted[pick];
            match rt.cloak_for(user, expired) {
                Ok((rung, region)) => {
                    match rung {
                        Rung::Fresh => report.served_fresh += 1,
                        Rung::Committed => report.served_committed += 1,
                        Rung::Coarsened => report.served_coarsened += 1,
                    }
                    if any_down {
                        report.served_during_crash += 1;
                    }
                    if let Some(p) = mirror.location(user) {
                        if !region.contains(&p) {
                            report.failures.push(format!(
                                "epoch {epoch}: {user:?} served a cloak not masking its location"
                            ));
                        }
                    }
                }
                Err(RuntimeError::Shed { .. }) => report.shed += 1,
                Err(RuntimeError::ShardDown { .. }) => {
                    report.unavailable_during_crash += 1;
                    if !any_down {
                        report
                            .failures
                            .push(format!("epoch {epoch}: ShardDown with every shard up"));
                    }
                }
                Err(RuntimeError::UnknownUser(u)) => {
                    // Mid-migration senders (delete durable, insert not
                    // yet routed) are transiently unknown; anyone else is
                    // a routing bug.
                    if mirror.location(u).is_none() {
                        report.failures.push(format!("epoch {epoch}: {u:?} vanished"));
                    }
                }
                Err(e) => report.failures.push(format!("epoch {epoch}: query {user:?}: {e}")),
            }
        }

        // Heavy-tier self-healing cadence: scrub every up shard (a
        // healthy disk must quarantine nothing), then run retention GC.
        if cfg.scrub_every > 0 && (epoch + 1).is_multiple_of(cfg.scrub_every) {
            match rt.scrub() {
                Ok(reports) => {
                    for (shard, scrub) in reports.iter().enumerate() {
                        let Some(scrub) = scrub else { continue };
                        report.scrubs += 1;
                        if !scrub.quarantined.is_empty() {
                            report.failures.push(format!(
                                "epoch {epoch}: scrub quarantined {} files on shard {shard} \
                                 of a healthy disk",
                                scrub.quarantined.len()
                            ));
                        }
                    }
                }
                Err(e) => report.failures.push(format!("epoch {epoch}: scrub: {e}")),
            }
            match rt.gc() {
                Ok(reports) => {
                    for gc in reports.into_iter().flatten() {
                        report.checkpoints_removed += gc.checkpoints_removed.len();
                    }
                }
                Err(e) => report.failures.push(format!("epoch {epoch}: gc: {e}")),
            }
            // The retention bound must hold on disk, not just in a GC
            // report: count the surviving generations of every up shard.
            if let Some(retain) = cfg.retain_checkpoints {
                for shard in 0..rt.shard_count() {
                    if rt.shard(shard).is_none() {
                        continue;
                    }
                    match lbs_runtime::list_checkpoints(&rt.shard_dir(shard)) {
                        Ok(gens) if gens.len() > retain.max(1) => {
                            report.failures.push(format!(
                                "epoch {epoch}: shard {shard} holds {} checkpoint \
                                 generations, retention bound is {retain}",
                                gens.len()
                            ));
                        }
                        Ok(_) => {}
                        Err(e) => report
                            .failures
                            .push(format!("epoch {epoch}: list shard {shard} generations: {e}")),
                    }
                }
            }
        }

        // Attacker audit on the configured cadence: query *every* sender
        // and face the union of served cloaks with the oracle stack.
        if cfg.audit_every > 0 && (epoch + 1).is_multiple_of(cfg.audit_every) {
            audit_served(&mut rt, &mirror, &users_sorted, cfg.k, epoch, &mut report);
        }
    }

    // Settle: recover anything still down (schedules may extend past the
    // last epoch), drain the pipeline, and run the final audit.
    for shard in 0..rt.shard_count() {
        if rt.shard(shard).is_none() {
            match rt.recover_shard(shard) {
                Ok(rec) => {
                    report.recoveries += 1;
                    report.replayed_total += rec.replayed;
                }
                Err(e) => report.failures.push(format!("final recovery of shard {shard}: {e}")),
            }
        }
    }
    if let Err(e) = rt.drain() {
        report.failures.push(format!("final drain: {e}"));
    }
    audit_served(&mut rt, &mirror, &users_sorted, cfg.k, cfg.epochs, &mut report);

    // Parity: the merged shard databases must be exactly the mirror.
    match rt.merged_db() {
        Ok(merged) => {
            let mut mirror_rows: Vec<(UserId, Point)> = mirror.iter().collect();
            mirror_rows.sort_unstable_by_key(|(u, _)| *u);
            let merged_rows: Vec<(UserId, Point)> = merged.iter().collect();
            if merged_rows != mirror_rows {
                report.failures.push(format!(
                    "sharded population diverged from the mirror ({} vs {} rows)",
                    merged_rows.len(),
                    mirror_rows.len()
                ));
            }
            report.population = merged.len();

            // Divergence bound: sharded aggregate cost vs the
            // single-shard optimum over the same final population.
            report.sharded_cost = rt.aggregate_cost();
            match Anonymizer::build(&merged, map, cfg.k) {
                Ok(single) => {
                    report.single_cost = single.policy().cost_exact().unwrap_or(0);
                    report.divergence_pct = divergence_pct(report.sharded_cost, report.single_cost);
                    if report.divergence_pct > cfg.divergence_bound_pct {
                        report.failures.push(format!(
                            "cost divergence {:.4}% exceeds the {:.2}% bound",
                            report.divergence_pct, cfg.divergence_bound_pct
                        ));
                    }
                }
                Err(e) => report.failures.push(format!("single-shard reference: {e}")),
            }
        }
        Err(e) => report.failures.push(format!("merged db: {e}")),
    }

    if report.crashes_injected != cfg.crashes.len() {
        report.failures.push(format!(
            "only {} of {} scheduled crashes injected",
            report.crashes_injected,
            cfg.crashes.len()
        ));
    }
    if !cfg.crashes.is_empty() {
        if report.recoveries < report.crashes_injected {
            report.failures.push(format!(
                "{} crashes but only {} recoveries",
                report.crashes_injected, report.recoveries
            ));
        }
        if report.served_during_crash == 0 {
            report.failures.push("global stall: nothing was served while a shard was down".into());
        }
    }

    // Total WAL pruning comes from the metrics sink: the runtime's
    // automatic post-checkpoint GC does most of the pruning when
    // retention is bounded, and only the counter sees those passes.
    report.wal_records_pruned = metrics.snapshot().counter(Counter::WalSegmentsPruned);

    // Fingerprint: every counter plus the final merged policy, so two
    // runs agree iff their observable outcomes agree.
    let mut h = report.fingerprint;
    let final_policy = crate::golden::policy_fingerprint(&rt.merged_policy());
    for v in [
        report.updates_applied as u64,
        report.migrations,
        report.served_fresh as u64,
        report.served_committed as u64,
        report.served_coarsened as u64,
        report.shed as u64,
        report.served_during_crash as u64,
        report.unavailable_during_crash as u64,
        report.replayed_total as u64,
        report.breaches as u64,
        report.sharded_cost as u64,
        report.single_cost as u64,
        final_policy,
    ] {
        fnv1a(&mut h, &v.to_le_bytes());
    }
    report.fingerprint = h;

    let _ = std::fs::remove_dir_all(&dir);
    Ok(report)
}

/// Queries every present sender, assembles the union of served cloaks,
/// and faces it with `verify_policy_aware` plus the PRE-enumerating
/// attacker over the served population. Senders on a down shard are
/// outside the observation set (they emit no request).
// lbs-lint: allow-item(location-taint, reason = "audit failure entries name user ids and epoch numbers; the served rows feed the attacker oracle in memory and never leave through the report strings")
fn audit_served(
    rt: &mut lbs_runtime::ShardedRuntime,
    mirror: &LocationDb,
    users_sorted: &[UserId],
    k: usize,
    epoch: u64,
    report: &mut SoakReport,
) {
    let expired = Some(Duration::from_millis(1));
    let mut served = BulkPolicy::new("soak-served");
    let mut served_rows: Vec<(UserId, Point)> = Vec::new();
    for &user in users_sorted {
        if mirror.location(user).is_none() {
            continue;
        }
        match rt.cloak_for(user, expired) {
            Ok((_, region)) => {
                served.assign(user, region);
                if let Some(p) = mirror.location(user) {
                    served_rows.push((user, p));
                }
            }
            Err(
                RuntimeError::Shed { .. }
                | RuntimeError::ShardDown { .. }
                | RuntimeError::UnknownUser(_),
            ) => {}
            Err(e) => {
                report.failures.push(format!("audit at epoch {epoch}: {user:?}: {e}"));
            }
        }
    }
    report.audits += 1;
    if served_rows.is_empty() {
        report.failures.push(format!("audit at epoch {epoch}: nobody was served"));
        return;
    }
    let served_db = match LocationDb::from_rows(served_rows) {
        Ok(db) => db,
        Err(e) => {
            report.failures.push(format!("audit at epoch {epoch}: served db: {e:?}"));
            return;
        }
    };
    if let Err(violations) = verify_policy_aware(&served, &served_db, k) {
        report.breaches += violations.len();
        report.failures.push(format!(
            "audit at epoch {epoch}: {} structural verify violations",
            violations.len()
        ));
    }
    let breaches = audit_policy(&served, &served_db, k);
    if !breaches.is_empty() {
        report.breaches += breaches.len();
        report.failures.push(format!(
            "audit at epoch {epoch}: attacker breached {} cloaks (first region {})",
            breaches.len(),
            breaches[0].region
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lbs-soak-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn smoke_soak_is_clean_and_deterministic() {
        let dir = scratch("smoke");
        let cfg = SoakConfig::smoke();
        let a = soak(&dir, &cfg).unwrap();
        assert!(a.is_clean(), "{a}");
        assert_eq!(a.crashes_injected, 1);
        assert!(a.recoveries >= 1);
        assert!(a.replayed_total >= 1, "recovery must replay staged traffic");
        assert!(a.served_during_crash > 0, "other shards must serve through the outage");
        assert!(a.unavailable_during_crash > 0, "the down shard must refuse, not wedge");
        assert_eq!(a.breaches, 0);
        assert!(a.audits >= 2);
        assert!(a.divergence_pct <= cfg.divergence_bound_pct, "{a}");
        let b = soak(&dir, &cfg).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint, "same seed must reproduce the same soak");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_free_soak_serves_every_wave() {
        let dir = scratch("calm");
        let mut cfg = SoakConfig::smoke();
        cfg.seed = 0x50AC_0002;
        cfg.crashes.clear();
        cfg.epochs = 6;
        let report = soak(&dir, &cfg).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.crashes_injected, 0);
        assert_eq!(report.unavailable_during_crash, 0);
        assert!(report.served_fresh + report.served_committed + report.served_coarsened > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heavy_preset_validates_and_turns_on_self_healing() {
        let cfg = SoakConfig::heavy();
        cfg.validate().unwrap();
        assert_eq!(cfg.checkpoint_every, 1, "heavy tier must pile up generations");
        assert!(cfg.retain_checkpoints.is_some(), "heavy tier must bound retention");
        assert!(cfg.scrub_every > 0, "heavy tier must scrub mid-traffic");
        assert!(cfg.crashes.len() >= 2, "heavy tier must crash across the pruned lineage");
    }

    #[test]
    fn heavy_mechanics_scrub_and_gc_stay_clean_at_smoke_scale() {
        // The heavy tier's self-healing cadence (generation pile-up,
        // bounded retention, mid-traffic scrub + GC) at smoke scale, so
        // CI proves the machinery without the nightly's population.
        let dir = scratch("heavy-mech");
        let mut cfg = SoakConfig::smoke();
        cfg.seed = 0x50AC_4EA8;
        cfg.checkpoint_every = 1;
        cfg.retain_checkpoints = Some(2);
        cfg.scrub_every = 2;
        let report = soak(&dir, &cfg).unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(report.scrubs >= 4, "scrub must run mid-traffic: {report}");
        // Retention bound (at most 2 generations per shard) is asserted
        // on disk at every scrub cadence and folds into is_clean();
        // pruning volume shows up in the WAL counter because the
        // automatic post-checkpoint GC does the trimming continuously.
        assert!(report.wal_records_pruned > 0, "retention GC must prune WAL records: {report}");
        assert!(report.recoveries >= 1, "the crash must recover across the pruned lineage");
        assert_eq!(report.breaches, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected_up_front() {
        let dir = scratch("invalid");
        let mut cfg = SoakConfig::smoke();
        cfg.crashes[0].shard = 99;
        assert!(soak(&dir, &cfg).is_err());
        let mut cfg = SoakConfig::smoke();
        cfg.move_fraction = 1.5;
        assert!(soak(&dir, &cfg).is_err());
        let mut cfg = SoakConfig::smoke();
        cfg.epochs = 0;
        assert!(soak(&dir, &cfg).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
