//! Seeded storage-fault sweep: deterministic disk faults, crash-restart
//! loops, scrub/GC self-healing, and sharded victims.
//!
//! Three phases, all driven from one master seed:
//!
//! 1. **Fault-plan lives** — a single-runtime reference run fixes the
//!    exact committed policy bytes at every sequence number
//!    (`per_seq`). Each sweep point then replays the same churn through
//!    a [`FaultFs`](lbs_runtime::FaultFs) whose
//!    [`DiskFaultPlan`](lbs_runtime::DiskFaultPlan) is derived from the
//!    point index: short writes, fsync failures, ENOSPC budgets,
//!    checkpoint bit-rot, rename failures, and crash points. Every
//!    storage failure kills the process model: the runtime is dropped
//!    and recovered (under the *next* life's fault plan), and the
//!    recovered committed policy must be **bit-identical** to the
//!    reference at the recovered durable sequence. ENOSPC runs the
//!    emergency-GC ladder and, when the disk really is full, must
//!    surface as a typed [`RuntimeError::StorageExhausted`] — never a
//!    panic, never a silent drop. Even points run bounded retention
//!    (`retain_checkpoints = 2`) so the GC and WAL pruning are
//!    exercised *in-sweep* and proven to never prune a suffix a later
//!    recovery needs.
//! 2. **Rot and self-healing** — on-disk corruption of real artifacts:
//!    a rotten newest generation must fall back (and scrub must
//!    quarantine it), rotting *every* generation must fail loudly with
//!    a typed error (and scrub must name every victim), a rotten WAL
//!    region must recover exactly the readable prefix, and a
//!    post-[`gc`](lbs_runtime::ServiceRuntime::gc) directory must still
//!    hold the full replay suffix for its oldest retained generation.
//! 3. **Sharded victims** — per-shard storage overrides
//!    ([`ShardedBuilder::shard_storage`](lbs_runtime::ShardedBuilder))
//!    and on-disk damage confined to one victim shard: survivors must
//!    recover bit-identical to their full reference state no matter
//!    what happened to the victim (shared-nothing isolation), and the
//!    victim must either recover its durable prefix bit-identically or
//!    fail loudly with a typed error naming its artifacts.
//!
//! Recovered states are additionally audited with the full oracle
//! stack (`verify_policy_aware` plus the PRE-enumerating attacker) on a
//! sampled schedule: self-healing must never trade durability back for
//! an anonymity breach.

use lbs_attack::audit_policy;
use lbs_core::verify_policy_aware;
use lbs_geom::{Point, Rect};
use lbs_metrics::{Counter, Metrics};
use lbs_model::{encode_policy, LocationDb, Move, UserId, UserUpdate};
use lbs_runtime::{
    list_checkpoints, real_fs, scan, DiskFaultPlan, FaultFs, ManualClock, RuntimeBuilder,
    RuntimeConfig, RuntimeError, ServiceRuntime, StorageBackend, WalRecord, WAL_FILE,
};
use lbs_workload::derive_seed;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Parameters of one storage-fault sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StorageFaultConfig {
    /// Master seed deriving the population, churn, and every fault plan.
    pub seed: u64,
    /// Population of the single-runtime reference run.
    pub users: usize,
    /// Anonymity level.
    pub k: usize,
    /// Churn batches (one commit each) in the reference runs.
    pub rounds: u64,
    /// Phase-1 points: seeded fault plans with crash-restart lives.
    pub fault_points: usize,
    /// Phase-2 points: on-disk rot, scrub, and GC-retention scenarios.
    pub rot_points: usize,
    /// Phase-3 points: sharded victims (per-shard faults and damage).
    pub shard_points: usize,
    /// Shards requested for phase 3.
    pub shards: usize,
}

impl Default for StorageFaultConfig {
    fn default() -> Self {
        StorageFaultConfig {
            seed: 0x5EED_D15C,
            users: 32,
            k: 3,
            rounds: 6,
            fault_points: 140,
            rot_points: 30,
            shard_points: 30,
            shards: 2,
        }
    }
}

/// What one storage-fault sweep covered and found.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StorageFaultReport {
    /// The sweep's configuration (replay with `lbs storage-fault-smoke`).
    pub config: StorageFaultConfig,
    /// Total sweep points.
    pub points: usize,
    /// Phase-1 fault-plan points completed.
    pub fault_points: usize,
    /// Phase-2 rot/self-healing points completed.
    pub rot_points: usize,
    /// Phase-3 sharded-victim points completed.
    pub shard_points: usize,
    /// Crash-restart recoveries performed (each checked bit-identical).
    pub restarts: usize,
    /// Injected failures that surfaced as loud typed errors.
    pub loud_failures: usize,
    /// ENOSPC ladder sheds observed (typed `StorageExhausted`).
    pub sheds: usize,
    /// Recovered states audited with the PRE-enumerating attacker.
    pub attacker_audits: usize,
    /// Final [`Counter::ScrubsRun`] across the sweep.
    pub scrubs_run: u64,
    /// Final [`Counter::CorruptFilesQuarantined`] across the sweep.
    pub corrupt_files_quarantined: u64,
    /// Final [`Counter::WalSegmentsPruned`] across the sweep.
    pub wal_segments_pruned: u64,
    /// Final [`Counter::EnospcSheds`] across the sweep.
    pub enospc_sheds: u64,
    /// Final [`Counter::GenerationFallbacks`] across the sweep.
    pub generation_fallbacks: u64,
    /// Divergence or oracle violations, each naming its point.
    pub failures: Vec<String>,
}

impl StorageFaultReport {
    /// Every point recovered bit-identically or failed loudly and typed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for StorageFaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "storage-fault sweep: {} points under seed {} ({} fault-plan, {} rot, \
             {} sharded), {} restarts, {} loud failures, {} sheds, {} attacker audits — {}",
            self.points,
            self.config.seed,
            self.fault_points,
            self.rot_points,
            self.shard_points,
            self.restarts,
            self.loud_failures,
            self.sheds,
            self.attacker_audits,
            if self.is_clean() { "no silent divergence" } else { "FAILURES" },
        )?;
        writeln!(
            f,
            "  counters: scrubs {} quarantined {} wal-pruned {} enospc-sheds {} \
             generation-fallbacks {}",
            self.scrubs_run,
            self.corrupt_files_quarantined,
            self.wal_segments_pruned,
            self.enospc_sheds,
            self.generation_fallbacks,
        )?;
        for failure in &self.failures {
            writeln!(f, "  FAIL {failure}")?;
        }
        Ok(())
    }
}

fn side() -> i64 {
    64
}

fn seeded_db(seed: u64, users: usize) -> Result<LocationDb, String> {
    LocationDb::from_rows((0..users).map(|i| {
        let i = i as u64;
        (
            UserId(i),
            Point::new(
                (derive_seed(seed, 2 * i) % side() as u64) as i64,
                (derive_seed(seed, 2 * i + 1) % side() as u64) as i64,
            ),
        )
    }))
    .map_err(|e| format!("seeded db: {e:?}"))
}

fn churn_batch(
    seed: u64,
    round: u64,
    present: &mut Vec<UserId>,
    next_id: &mut u64,
) -> Vec<UserUpdate> {
    let mut batch: Vec<UserUpdate> = Vec::new();
    for j in 0..4u64 {
        let pick = derive_seed(seed, round * 131 + j) as usize % present.len();
        let user = present[pick];
        if batch.iter().any(|u| u.user() == user) {
            continue;
        }
        batch.push(UserUpdate::Move(Move {
            user,
            to: Point::new(
                (derive_seed(seed, round * 131 + 10 + j) % side() as u64) as i64,
                (derive_seed(seed, round * 131 + 20 + j) % side() as u64) as i64,
            ),
        }));
    }
    if round.is_multiple_of(2) {
        let at = Point::new(
            (derive_seed(seed, round * 131 + 30) % side() as u64) as i64,
            (derive_seed(seed, round * 131 + 31) % side() as u64) as i64,
        );
        batch.push(UserUpdate::Insert { user: UserId(*next_id), at });
        present.push(UserId(*next_id));
        *next_id += 1;
    }
    batch
}

fn copy_tree(from: &Path, to: &Path) -> Result<(), String> {
    std::fs::create_dir_all(to).map_err(|e| format!("mkdir {}: {e}", to.display()))?;
    let entries = std::fs::read_dir(from).map_err(|e| format!("read {}: {e}", from.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", from.display()))?;
        let src = entry.path();
        let dst = to.join(entry.file_name());
        let kind = entry.file_type().map_err(|e| format!("stat {}: {e}", src.display()))?;
        if kind.is_dir() {
            copy_tree(&src, &dst)?;
        } else {
            std::fs::copy(&src, &dst).map_err(|e| format!("copy {}: {e}", src.display()))?;
        }
    }
    Ok(())
}

/// Flips one seed-derived bit of `path` in place (media rot).
fn rot_file(path: &Path, seed: u64) -> Result<(), String> {
    let mut raw = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    if raw.is_empty() {
        return Err(format!("{} is empty, nothing to rot", path.display()));
    }
    let at = (seed as usize) % raw.len();
    raw[at] ^= 1 << ((seed >> 17) % 8);
    std::fs::write(path, &raw).map_err(|e| format!("rot {}: {e}", path.display()))
}

fn builder(
    cfg: &StorageFaultConfig,
    metrics: &Arc<Metrics>,
    storage: Arc<dyn StorageBackend>,
    retain: Option<usize>,
) -> RuntimeBuilder {
    let mut rc = RuntimeConfig::new(cfg.k, Rect::square(0, 0, side()));
    rc.checkpoint_every = 2;
    rc.retain_checkpoints = retain;
    RuntimeBuilder::new(rc)
        .clock(Arc::new(ManualClock::new()))
        .metrics(Arc::clone(metrics))
        .storage(storage)
}

/// Audits a recovered state with the full oracle stack: structural
/// verification plus the PRE-enumerating attacker over the committed
/// population. Self-healing must never buy durability back at the cost
/// of an anonymity breach.
fn attacker_audit(rt: &ServiceRuntime, k: usize) -> Result<(), String> {
    verify_policy_aware(rt.committed_policy(), rt.db(), k)
        .map_err(|v| format!("recovered policy: {} verify violations", v.len()))?;
    let breaches = audit_policy(rt.committed_policy(), rt.db(), k);
    if !breaches.is_empty() {
        return Err(format!("attacker breached {} cloaks on the recovered policy", breaches.len()));
    }
    Ok(())
}

/// Per-phase tallies folded into the final report.
#[derive(Debug, Default)]
struct Tally {
    restarts: usize,
    loud: usize,
    sheds: usize,
    audits: usize,
}

/// A life is abandoned for a cleaner storage after this many failures,
/// and the whole point fails loudly after `MAX_LIVES`.
const CLEAN_AFTER: usize = 3;
const MAX_LIVES: usize = 12;

/// The storage a given life of a fault point runs under. Life 0 carries
/// the point's own plan (every seventh point forces a tight ENOSPC
/// budget so the shed rung is guaranteed coverage); later lives draw
/// fresh seeded plans; from [`CLEAN_AFTER`] on, the disk is repaired.
fn life_storage(point: usize, point_seed: u64, life: usize) -> Arc<dyn StorageBackend> {
    if life >= CLEAN_AFTER {
        real_fs()
    } else if life == 0 && point % 7 == 3 {
        Arc::new(FaultFs::new(DiskFaultPlan::new().capacity_bytes(2_048 + point_seed % 4_096)))
    } else {
        Arc::new(FaultFs::new(DiskFaultPlan::seeded(derive_seed(point_seed, life as u64))))
    }
}

/// One phase-1 point: replay the reference churn under a seeded fault
/// plan, crash-restart-continue on every storage failure, and prove
/// every recovery (and the final state) bit-identical to the reference.
#[allow(clippy::too_many_arguments)]
fn run_fault_point(
    scratch: &Path,
    cfg: &StorageFaultConfig,
    metrics: &Arc<Metrics>,
    db0: &LocationDb,
    batches: &[Vec<UserUpdate>],
    per_seq: &[bytes::Bytes],
    point: usize,
    tally: &mut Tally,
) -> Result<(), String> {
    let point_seed = derive_seed(cfg.seed, 0xA000 + point as u64);
    let dir = scratch.join(format!("fault-{point:03}"));
    let _ = std::fs::remove_dir_all(&dir);
    // Even points run bounded retention so GC and WAL pruning happen
    // mid-sweep; odd points keep every generation.
    let retain = if point.is_multiple_of(2) { Some(2) } else { None };

    let mut created = false;
    let mut next_round = 0usize;
    let mut lives = 0usize;
    let result = 'point: loop {
        if lives > MAX_LIVES {
            break Err(format!(
                "no progress after {lives} lives (stuck at round {next_round}/{})",
                batches.len()
            ));
        }
        let storage = life_storage(point, point_seed, lives);
        let mut rt = if !created {
            match builder(cfg, metrics, Arc::clone(&storage), retain).create(&dir, db0) {
                Ok(rt) => {
                    created = true;
                    rt
                }
                // A prior life crashed after durable state landed; the
                // next iteration recovers instead of re-creating.
                Err(RuntimeError::AlreadyInitialized(_)) => {
                    created = true;
                    lives += 1;
                    continue 'point;
                }
                Err(RuntimeError::StorageExhausted { .. }) => {
                    tally.sheds += 1;
                    lives += 1;
                    continue 'point;
                }
                Err(_) => {
                    tally.loud += 1;
                    lives += 1;
                    continue 'point;
                }
            }
        } else {
            tally.restarts += 1;
            match builder(cfg, metrics, Arc::clone(&storage), retain).recover(&dir) {
                Ok((rt, _report)) => {
                    let durable = rt.durable_seq() as usize;
                    let Some(expected) = per_seq.get(durable) else {
                        break Err(format!(
                            "life {lives}: recovered durable seq {durable} past the reference"
                        ));
                    };
                    if encode_policy(rt.committed_policy()) != *expected {
                        break Err(format!(
                            "life {lives}: policy NOT bit-identical at durable seq {durable}"
                        ));
                    }
                    if rt.epoch() != durable as u64 + 1 {
                        break Err(format!(
                            "life {lives}: epoch {} != {} at durable seq {durable}",
                            rt.epoch(),
                            durable as u64 + 1
                        ));
                    }
                    next_round = durable;
                    rt
                }
                // Recovery through a still-faulty disk may itself fail —
                // loudly and typed — and the next life tries again.
                Err(e) => {
                    if lives >= CLEAN_AFTER {
                        break Err(format!("life {lives}: clean recovery failed: {e}"));
                    }
                    tally.loud += 1;
                    lives += 1;
                    continue 'point;
                }
            }
        };

        while next_round < batches.len() {
            match rt.apply_batch(&batches[next_round]) {
                Ok(_) => {}
                Err(RuntimeError::StorageExhausted { op, path }) => {
                    // The ENOSPC rung: typed, loud, names the artifact;
                    // the failed append rolled back, so a restart
                    // resumes from the unchanged durable prefix.
                    if path.as_os_str().is_empty() {
                        // lbs-lint: allow(location-taint, reason = "op is a storage operation name from the typed error; no coordinate is in the message")
                        break 'point Err(format!("shed on {op} without naming a path"));
                    }
                    tally.sheds += 1;
                    lives += 1;
                    continue 'point;
                }
                Err(_) => {
                    tally.loud += 1;
                    lives += 1;
                    continue 'point;
                }
            }
            match rt.commit() {
                Ok(_) => next_round += 1,
                Err(RuntimeError::StorageExhausted { .. }) => {
                    // The commit itself landed in memory; only the
                    // checkpoint was shed. The service keeps serving.
                    tally.sheds += 1;
                    next_round += 1;
                }
                Err(_) => {
                    tally.loud += 1;
                    lives += 1;
                    continue 'point;
                }
            }
        }

        let expected = &per_seq[batches.len()];
        if encode_policy(rt.committed_policy()) != *expected {
            break Err(format!("final policy NOT bit-identical after {lives} lives"));
        }
        if point.is_multiple_of(10) {
            if let Err(e) = attacker_audit(&rt, cfg.k) {
                break Err(e);
            }
            tally.audits += 1;
        }
        break Ok(());
    };
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// One phase-2 point: on-disk rot of real artifacts, exercising
/// generation fallback, scrub quarantine, loud total-loss failure, WAL
/// prefix recovery, and GC-retention suffix safety.
#[allow(clippy::too_many_arguments)]
fn run_rot_point(
    scratch: &Path,
    cfg: &StorageFaultConfig,
    metrics: &Arc<Metrics>,
    ref_dir: &Path,
    gens: &[(u64, PathBuf)],
    records: &[WalRecord],
    per_seq: &[bytes::Bytes],
    point: usize,
    tally: &mut Tally,
) -> Result<(), String> {
    let rot_seed = derive_seed(cfg.seed, 0xB000 + point as u64);
    let dir = scratch.join(format!("rot-{point:03}"));
    let _ = std::fs::remove_dir_all(&dir);
    copy_tree(ref_dir, &dir)?;
    let full = per_seq.len() - 1;
    let gen_path = |seq: u64| dir.join(format!("checkpoint-{seq:012}.ckpt"));
    let newest = gens.last().map(|(s, _)| *s).ok_or("reference has no checkpoints")?;
    let second = gens
        .iter()
        .rev()
        .nth(1)
        .map(|(s, _)| *s)
        .ok_or("reference has fewer than two generations")?;

    let result = (|| -> Result<(), String> {
        match point % 5 {
            // A rotten newest generation: recovery falls back to the
            // next older one and replays the WAL suffix bit-identically.
            0 => {
                rot_file(&gen_path(newest), rot_seed)?;
                let (rt, report) = builder(cfg, metrics, real_fs(), None)
                    .recover(&dir)
                    .map_err(|e| format!("fallback recovery failed: {e}"))?;
                if report.checkpoint_seq != second {
                    return Err(format!(
                        "recovered from generation {} instead of falling back to {second}",
                        report.checkpoint_seq
                    ));
                }
                if encode_policy(rt.committed_policy()) != per_seq[full] {
                    return Err("fallback recovery NOT bit-identical".into());
                }
                if point.is_multiple_of(3) {
                    attacker_audit(&rt, cfg.k)?;
                    tally.audits += 1;
                }
            }
            // Scrub quarantines the rotten generation by name; the next
            // recovery is clean and bit-identical.
            1 => {
                rot_file(&gen_path(newest), rot_seed)?;
                let (mut rt, _) = builder(cfg, metrics, real_fs(), None)
                    .recover(&dir)
                    .map_err(|e| format!("pre-scrub recovery failed: {e}"))?;
                let report = rt.scrub().map_err(|e| format!("scrub failed: {e}"))?;
                if report.quarantined.len() != 1 {
                    return Err(format!(
                        "scrub quarantined {} files, expected exactly the rotten newest",
                        report.quarantined.len()
                    ));
                }
                let named = report.quarantined[0].to_string_lossy().into_owned();
                if !named.contains(&format!("{newest:012}")) || !named.ends_with("quarantined") {
                    return Err(format!("quarantine path {named} does not name the victim"));
                }
                if !report.quarantined[0].exists() {
                    return Err(format!("{named} vanished — forensic bytes must be kept"));
                }
                if report.newest_verified_seq != Some(second) {
                    return Err(format!(
                        "newest verified generation {:?}, expected {second}",
                        report.newest_verified_seq
                    ));
                }
                drop(rt);
                let (rt, report) = builder(cfg, metrics, real_fs(), None)
                    .recover(&dir)
                    .map_err(|e| format!("post-scrub recovery failed: {e}"))?;
                if report.checkpoint_seq != second {
                    return Err("post-scrub recovery ignored the quarantine".into());
                }
                if encode_policy(rt.committed_policy()) != per_seq[full] {
                    return Err("post-scrub recovery NOT bit-identical".into());
                }
                tally.audits += 1;
                attacker_audit(&rt, cfg.k)?;
            }
            // Every generation rotten: recovery must fail loudly and
            // typed, and scrub must name every victim.
            2 => {
                for (seq, _) in gens {
                    rot_file(&gen_path(*seq), derive_seed(rot_seed, *seq))?;
                }
                match builder(cfg, metrics, real_fs(), None).recover(&dir) {
                    Ok(_) => {
                        return Err("recovered silently from total checkpoint loss".into());
                    }
                    Err(RuntimeError::NoState(path)) => {
                        tally.loud += 1;
                        if path != dir {
                            return Err(format!(
                                "NoState names {} instead of the damaged directory",
                                path.display()
                            ));
                        }
                    }
                    Err(e) => return Err(format!("expected NoState, got: {e}")),
                }
                let report = lbs_runtime::scrub_dir(real_fs().as_ref(), &dir)
                    .map_err(|e| format!("scrub failed: {e}"))?;
                if report.quarantined.len() != gens.len() {
                    return Err(format!(
                        "scrub quarantined {} of {} rotten generations",
                        report.quarantined.len(),
                        gens.len()
                    ));
                }
                if report.newest_verified_seq.is_some() {
                    return Err("scrub verified a generation that was rotten".into());
                }
            }
            // Rot inside a WAL frame (newer checkpoints removed): the
            // readable prefix recovers bit-identically, nothing more.
            3 => {
                let target = 2 + rot_seed % (records.len() as u64 - 2);
                let start = records[target as usize - 2].end_offset;
                let end = records[target as usize - 1].end_offset;
                let at = start + (rot_seed >> 8) % (end - start);
                let wal_path = dir.join(WAL_FILE);
                let mut raw =
                    std::fs::read(&wal_path).map_err(|e| format!("read sliced wal: {e}"))?;
                raw[at as usize] ^= 0x20;
                std::fs::write(&wal_path, &raw).map_err(|e| format!("write rotten wal: {e}"))?;
                for (seq, _) in gens {
                    if *seq >= target {
                        std::fs::remove_file(gen_path(*seq))
                            .map_err(|e| format!("drop future generation: {e}"))?;
                    }
                }
                let scrubbed = lbs_runtime::scrub_dir(real_fs().as_ref(), &dir)
                    .map_err(|e| format!("scrub failed: {e}"))?;
                if !scrubbed.wal_tail_torn {
                    return Err("scrub missed the torn WAL tail".into());
                }
                let (rt, _) = builder(cfg, metrics, real_fs(), None)
                    .recover(&dir)
                    .map_err(|e| format!("prefix recovery failed: {e}"))?;
                let durable = rt.durable_seq();
                if durable != target - 1 {
                    return Err(format!(
                        "recovered durable seq {durable}, expected the readable prefix {}",
                        target - 1
                    ));
                }
                if encode_policy(rt.committed_policy()) != per_seq[durable as usize] {
                    return Err("prefix recovery NOT bit-identical".into());
                }
            }
            // GC under bounded retention, then rot the newest retained
            // generation: the WAL suffix for the older retained one must
            // still be there (GC never prunes a needed segment).
            _ => {
                let (mut rt, _) = builder(cfg, metrics, real_fs(), Some(2))
                    .recover(&dir)
                    .map_err(|e| format!("pre-GC recovery failed: {e}"))?;
                let report = rt.gc().map_err(|e| format!("gc failed: {e}"))?;
                if report.retained != 2 || report.checkpoints_removed.len() != gens.len() - 2 {
                    return Err(format!(
                        "gc retained {} and removed {} of {} generations",
                        report.retained,
                        report.checkpoints_removed.len(),
                        gens.len()
                    ));
                }
                if report.wal_records_pruned == 0 {
                    return Err("gc pruned no WAL records on a multi-generation lineage".into());
                }
                drop(rt);
                rot_file(&gen_path(newest), rot_seed)?;
                let (rt, report) = builder(cfg, metrics, real_fs(), None)
                    .recover(&dir)
                    .map_err(|e| format!("post-GC fallback recovery failed: {e}"))?;
                if report.checkpoint_seq != second {
                    return Err(format!(
                        "post-GC fallback landed on generation {}, expected {second}",
                        report.checkpoint_seq
                    ));
                }
                if report.replayed == 0 {
                    return Err("post-GC fallback replayed nothing — suffix was pruned?".into());
                }
                if encode_policy(rt.committed_policy()) != per_seq[full] {
                    return Err("post-GC fallback NOT bit-identical — GC pruned a needed \
                                segment"
                        .into());
                }
            }
        }
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Per-shard reference artifacts for phase 3.
struct ShardRef {
    wal_raw: Vec<u8>,
    records: Vec<WalRecord>,
    gens: Vec<(u64, PathBuf)>,
    per_seq: Vec<bytes::Bytes>,
}

/// One phase-3 point: damage confined to one victim shard; survivors
/// must recover bit-identical to their full reference state.
#[allow(clippy::too_many_arguments)]
fn run_shard_point(
    scratch: &Path,
    cfg: &StorageFaultConfig,
    metrics: &Arc<Metrics>,
    ref_dir: &Path,
    shard_cfg: lbs_runtime::ShardedConfig,
    refs: &[ShardRef],
    point: usize,
    tally: &mut Tally,
) -> Result<(), String> {
    use lbs_runtime::ShardedBuilder;

    let shards = refs.len();
    let victim = point % shards;
    let flavor = (point / shards) % 3;
    let rot_seed = derive_seed(cfg.seed, 0xC000 + point as u64);
    let dir = scratch.join(format!("shard-fault-{point:03}"));
    let _ = std::fs::remove_dir_all(&dir);
    copy_tree(ref_dir, &dir)?;
    let vdir = dir.join(format!("shard-{victim:03}"));
    let vref = &refs[victim];
    let gen_path = |seq: u64| vdir.join(format!("checkpoint-{seq:012}.ckpt"));
    let newest = vref.gens.last().map(|(s, _)| *s).ok_or("victim has no checkpoints")?;

    // Expected durable prefix of the victim after this point's damage.
    let mut victim_durable = vref.per_seq.len() as u64 - 1;
    match flavor {
        // On-disk rot of the victim's newest generation: fleet recovery
        // falls back on that shard only and replays to full state.
        0 => {
            rot_file(&gen_path(newest), rot_seed)?;
        }
        // The victim's storage backend rots every checkpoint read: the
        // fleet recovery must fail loudly and typed, naming the victim.
        1 => {
            let rotten: Arc<dyn StorageBackend> =
                Arc::new(FaultFs::new(DiskFaultPlan::new().bit_rot("checkpoint-", rot_seed)));
            match ShardedBuilder::new(shard_cfg)
                .clock(Arc::new(ManualClock::new()))
                .metrics(Arc::clone(metrics))
                .shard_storage(victim, rotten)
                .recover(&dir)
            {
                Ok(_) => {
                    let _ = std::fs::remove_dir_all(&dir);
                    return Err("fleet recovered silently through a rotten backend".into());
                }
                Err(RuntimeError::NoState(path)) => {
                    tally.loud += 1;
                    if !path.to_string_lossy().contains(&format!("shard-{victim:03}")) {
                        let _ = std::fs::remove_dir_all(&dir);
                        return Err(format!(
                            "NoState names {} instead of the victim shard",
                            path.display()
                        ));
                    }
                }
                Err(RuntimeError::CorruptCheckpoint { .. }) => tally.loud += 1,
                Err(e) => {
                    let _ = std::fs::remove_dir_all(&dir);
                    return Err(format!("expected a typed corruption error, got: {e}"));
                }
            }
            // The disk itself is clean — a repaired backend recovers.
        }
        // Crash-slice the victim's WAL at a record boundary and rot the
        // newest surviving generation: prefix fallback on the victim,
        // full isolation on the survivors. A victim whose reference WAL
        // is too short to slice degrades to the rot-newest scenario.
        _ if vref.records.len() < 4 => {
            rot_file(&gen_path(newest), rot_seed)?;
        }
        _ => {
            let target = 2 + rot_seed % (vref.records.len() as u64 - 2);
            let offset = vref.records[target as usize - 1].end_offset;
            std::fs::write(vdir.join(WAL_FILE), &vref.wal_raw[..offset as usize])
                .map_err(|e| format!("slice victim wal: {e}"))?;
            let mut kept: Vec<u64> = Vec::new();
            for (seq, _) in &vref.gens {
                if *seq > target {
                    std::fs::remove_file(gen_path(*seq))
                        .map_err(|e| format!("drop future generation: {e}"))?;
                } else {
                    kept.push(*seq);
                }
            }
            kept.sort_unstable();
            if kept.len() >= 2 {
                rot_file(&gen_path(kept[kept.len() - 1]), rot_seed)?;
            }
            victim_durable = target;
        }
    }

    let result = (|| -> Result<(), String> {
        let (recovered, reports) = ShardedBuilder::new(shard_cfg)
            .clock(Arc::new(ManualClock::new()))
            .metrics(Arc::clone(metrics))
            .recover(&dir)
            .map_err(|e| format!("fleet recovery failed: {e}"))?;
        tally.restarts += 1;
        for (shard, sref) in refs.iter().enumerate().take(recovered.shard_count()) {
            let rt = recovered.shard(shard).ok_or_else(|| format!("shard {shard} not up"))?;
            let expected_seq =
                if shard == victim { victim_durable } else { sref.per_seq.len() as u64 - 1 };
            let expected = sref
                .per_seq
                .get(expected_seq as usize)
                .ok_or_else(|| format!("no reference at shard {shard} seq {expected_seq}"))?;
            if encode_policy(rt.committed_policy()) != *expected {
                return Err(format!(
                    "shard {shard} NOT bit-identical at seq {expected_seq}{}",
                    if shard == victim { "" } else { " — isolation violated" },
                ));
            }
            if shard == victim {
                // A torn migration is repaired by a reconciliation
                // purge: one extra staged record on the purged shard.
                let purged = recovered.reconciled_purges().get(shard).copied().unwrap_or(0);
                let allowed = expected_seq + u64::from(purged > 0);
                if rt.durable_seq() != expected_seq && rt.durable_seq() != allowed {
                    return Err(format!(
                        "victim durable seq {} != {expected_seq} ({purged} purged)",
                        rt.durable_seq()
                    ));
                }
            }
        }
        if flavor == 0 {
            let report = reports.get(victim).ok_or("no victim recovery report")?;
            if report.checkpoint_seq >= newest {
                return Err(format!(
                    "victim recovered from generation {} instead of falling back",
                    report.checkpoint_seq
                ));
            }
        }
        if point.is_multiple_of(5) {
            let rt = recovered.shard(victim).ok_or("victim not up")?;
            attacker_audit(rt, cfg.k)?;
            tally.audits += 1;
        }
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Runs the full storage-fault sweep under `scratch` (a disposable
/// directory; everything it creates is removed before returning).
///
/// # Errors
/// A message when a *reference* run cannot be built — individual sweep
/// point violations land in [`StorageFaultReport::failures`] instead.
pub fn storage_fault_sweep(
    scratch: &Path,
    cfg: &StorageFaultConfig,
) -> Result<StorageFaultReport, String> {
    use lbs_runtime::{ShardedBuilder, ShardedConfig};

    let metrics = Arc::new(Metrics::new());
    let mut report = StorageFaultReport {
        config: *cfg,
        points: 0,
        fault_points: 0,
        rot_points: 0,
        shard_points: 0,
        restarts: 0,
        loud_failures: 0,
        sheds: 0,
        attacker_audits: 0,
        scrubs_run: 0,
        corrupt_files_quarantined: 0,
        wal_segments_pruned: 0,
        enospc_sheds: 0,
        generation_fallbacks: 0,
        failures: Vec::new(),
    };
    let mut tally = Tally::default();

    // Single-runtime reference: fixes per_seq (committed policy bytes at
    // every sequence number) and the exact churn batches every phase-1
    // point replays.
    let ref_dir = scratch.join("reference");
    let _ = std::fs::remove_dir_all(&ref_dir);
    let db0 = seeded_db(cfg.seed, cfg.users)?;
    let mut runtime = builder(cfg, &metrics, real_fs(), None)
        .create(&ref_dir, &db0)
        .map_err(|e| format!("create reference: {e}"))?;
    let mut per_seq = vec![encode_policy(runtime.committed_policy())];
    let mut batches: Vec<Vec<UserUpdate>> = Vec::new();
    let mut present: Vec<UserId> = db0.users().collect();
    let mut next_id = cfg.users as u64;
    for round in 0..cfg.rounds {
        let batch = churn_batch(cfg.seed, round, &mut present, &mut next_id);
        runtime.apply_batch(&batch).map_err(|e| format!("reference apply: {e}"))?;
        runtime.commit().map_err(|e| format!("reference commit: {e}"))?;
        per_seq.push(encode_policy(runtime.committed_policy()));
        batches.push(batch);
    }
    drop(runtime);
    let wal_raw =
        std::fs::read(ref_dir.join(WAL_FILE)).map_err(|e| format!("read reference wal: {e}"))?;
    let (records, valid_len) = scan(&wal_raw);
    if valid_len != wal_raw.len() as u64 || records.len() != cfg.rounds as usize {
        return Err("reference wal inconsistent".into());
    }
    let mut gens =
        list_checkpoints(&ref_dir).map_err(|e| format!("list reference checkpoints: {e}"))?;
    gens.sort_by_key(|(seq, _)| *seq);
    if gens.len() < 3 {
        return Err(format!("reference produced only {} generations", gens.len()));
    }

    // Phase 1: seeded fault plans with crash-restart-continue lives.
    for point in 0..cfg.fault_points {
        report.points += 1;
        report.fault_points += 1;
        if let Err(message) =
            run_fault_point(scratch, cfg, &metrics, &db0, &batches, &per_seq, point, &mut tally)
        {
            let seed = derive_seed(cfg.seed, 0xA000 + point as u64);
            // lbs-lint: allow(location-taint, reason = "failure messages carry seeds, sequence numbers, and artifact paths — never raw coordinates")
            report.failures.push(format!("fault point {point} [seed {seed:#x}]: {message}"));
        }
    }

    // Phase 2: on-disk rot, scrub quarantine, GC-retention safety.
    for point in 0..cfg.rot_points {
        report.points += 1;
        report.rot_points += 1;
        if let Err(message) = run_rot_point(
            scratch, cfg, &metrics, &ref_dir, &gens, &records, &per_seq, point, &mut tally,
        ) {
            // lbs-lint: allow(location-taint, reason = "failure messages carry seeds, sequence numbers, and artifact paths — never raw coordinates")
            report.failures.push(format!("rot point {point}: {message}"));
        }
    }
    let _ = std::fs::remove_dir_all(&ref_dir);

    // Sharded reference for phase 3.
    let sref_dir = scratch.join("sharded-reference");
    let _ = std::fs::remove_dir_all(&sref_dir);
    let sdb0 = seeded_db(derive_seed(cfg.seed, 0xC0DE), cfg.users * 2)?;
    let mut shard_cfg = ShardedConfig::new(cfg.k, Rect::square(0, 0, side()), cfg.shards);
    shard_cfg.checkpoint_every = 2;
    let mut fleet = ShardedBuilder::new(shard_cfg)
        .clock(Arc::new(ManualClock::new()))
        .metrics(Arc::clone(&metrics))
        .create(&sref_dir, &sdb0)
        .map_err(|e| format!("create sharded reference: {e}"))?;
    let shards = fleet.shard_count();
    let mut shard_seqs: Vec<Vec<bytes::Bytes>> = Vec::with_capacity(shards);
    for i in 0..shards {
        let shard = fleet.shard(i).ok_or_else(|| format!("shard {i} not up"))?;
        shard_seqs.push(vec![encode_policy(shard.committed_policy())]);
    }
    let mut present: Vec<UserId> = sdb0.users().collect();
    let mut next_id = cfg.users as u64 * 2;
    for round in 0..cfg.rounds {
        let batch = churn_batch(derive_seed(cfg.seed, 0xC0DE), round, &mut present, &mut next_id);
        fleet.pump(&batch).map_err(|e| format!("sharded round {round}: pump: {e}"))?;
        fleet.drain().map_err(|e| format!("sharded round {round}: drain: {e}"))?;
        for (i, seqs) in shard_seqs.iter_mut().enumerate() {
            let shard = fleet.shard(i).ok_or_else(|| format!("shard {i} not up"))?;
            let seq = shard.committed_seq() as usize;
            if seqs.len() == seq {
                seqs.push(encode_policy(shard.committed_policy()));
            } else if seqs.len() != seq + 1 {
                return Err(format!("shard {i} jumped to seq {seq} with {} recorded", seqs.len()));
            }
        }
    }
    drop(fleet);
    let mut refs: Vec<ShardRef> = Vec::with_capacity(shards);
    for (i, per_seq) in shard_seqs.into_iter().enumerate() {
        let sdir = sref_dir.join(format!("shard-{i:03}"));
        let wal_raw =
            std::fs::read(sdir.join(WAL_FILE)).map_err(|e| format!("read shard {i} wal: {e}"))?;
        let (records, valid_len) = scan(&wal_raw);
        if valid_len != wal_raw.len() as u64 {
            return Err(format!("shard {i} reference wal has an invalid tail"));
        }
        let mut gens =
            list_checkpoints(&sdir).map_err(|e| format!("list shard {i} checkpoints: {e}"))?;
        gens.sort_by_key(|(seq, _)| *seq);
        refs.push(ShardRef { wal_raw, records, gens, per_seq });
    }

    // Phase 3: per-shard victims under fleet recovery.
    for point in 0..cfg.shard_points {
        report.points += 1;
        report.shard_points += 1;
        if let Err(message) =
            run_shard_point(scratch, cfg, &metrics, &sref_dir, shard_cfg, &refs, point, &mut tally)
        {
            // lbs-lint: allow(location-taint, reason = "failure messages carry seeds, sequence numbers, and artifact paths — never raw coordinates")
            report.failures.push(format!("shard point {point}: {message}"));
        }
    }
    let _ = std::fs::remove_dir_all(&sref_dir);

    report.restarts = tally.restarts;
    report.loud_failures = tally.loud;
    report.sheds = tally.sheds;
    report.attacker_audits = tally.audits;
    let snapshot = metrics.snapshot();
    report.scrubs_run = snapshot.counter(Counter::ScrubsRun);
    report.corrupt_files_quarantined = snapshot.counter(Counter::CorruptFilesQuarantined);
    report.wal_segments_pruned = snapshot.counter(Counter::WalSegmentsPruned);
    report.enospc_sheds = snapshot.counter(Counter::EnospcSheds);
    report.generation_fallbacks = snapshot.counter(Counter::GenerationFallbacks);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lbs-storage-fault-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn default_sweep_covers_two_hundred_points_without_silent_divergence() {
        let dir = scratch("default");
        let report = storage_fault_sweep(&dir, &StorageFaultConfig::default()).unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(report.points >= 200, "only {} sweep points", report.points);
        assert!(report.fault_points >= 140, "{report}");
        assert!(report.rot_points >= 30, "{report}");
        assert!(report.shard_points >= 30, "{report}");
        assert!(report.restarts >= 25, "crash-restart loops under-exercised: {report}");
        assert!(report.loud_failures >= 10, "typed loud failures under-exercised: {report}");
        assert!(report.sheds >= 3, "ENOSPC shed rung under-exercised: {report}");
        assert!(report.attacker_audits >= 10, "{report}");
        // Every self-healing counter must fire somewhere in the sweep.
        assert!(report.scrubs_run > 0, "{report}");
        assert!(report.corrupt_files_quarantined > 0, "{report}");
        assert!(report.wal_segments_pruned > 0, "{report}");
        assert!(report.enospc_sheds > 0, "{report}");
        assert!(report.generation_fallbacks > 0, "{report}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiny_sweep_is_deterministic_across_runs() {
        let cfg = StorageFaultConfig {
            fault_points: 6,
            rot_points: 5,
            shard_points: 4,
            ..StorageFaultConfig::default()
        };
        let dir_a = scratch("det-a");
        let dir_b = scratch("det-b");
        let a = storage_fault_sweep(&dir_a, &cfg).unwrap();
        let b = storage_fault_sweep(&dir_b, &cfg).unwrap();
        assert!(a.is_clean(), "{a}");
        assert_eq!(a.restarts, b.restarts, "restart schedule must be a pure function of seed");
        assert_eq!(a.loud_failures, b.loud_failures);
        assert_eq!(a.sheds, b.sheds);
        assert_eq!(a.generation_fallbacks, b.generation_fallbacks);
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }
}
