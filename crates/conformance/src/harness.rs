//! The attacker-in-the-loop scenario runner.
//!
//! Every scenario produced by [`scenario_matrix`](crate::scenario_matrix)
//! runs its algorithm, then faces the oracle stack:
//!
//! 1. **`core::verify`** — masking, totality, group-size k-anonymity
//!    (the Proposition-4 shortcut);
//! 2. **the policy-aware attacker** — [`lbs_attack::audit_policy`]
//!    enumerates candidate senders per cloak exactly as the Example-1
//!    adversary does; policy-aware algorithms must survive, baselines'
//!    breaches are recorded as evidence;
//! 3. **the brute-force optimality oracle** — on tiny instances, every
//!    tree configuration is enumerated and the DP cost must match;
//! 4. **the literal Definition-6 PRE oracle** — on tiny instances, all
//!    possible reverse engineerings are enumerated and k pairwise
//!    sender-disjoint ones must exist.
//!
//! Failures carry the scenario id **and its derived seed**, so any red
//! run replays with `ConformanceReport` alone — no ambient randomness.

use crate::scenario::{scenario_matrix, Algorithm, Scenario, Tier};
use lbs_attack::{audit_policy, literal_k_anonymity};
use lbs_baselines::{Casper, CircularKInside, PolicyUnawareBinary, PolicyUnawareQuad};
use lbs_core::{
    anonymize_per_user_k, brute_force_optimal_cost, bulk_dp_dense, bulk_dp_fast, bulk_dp_fast_quad,
    verify_per_user_k, verify_policy_aware, Anonymizer, IncrementalAnonymizer, KRequirements,
    StickyAnonymizer,
};
use lbs_geom::{Point, Rect};
use lbs_metrics::{Counter, Metrics};
use lbs_model::{
    BulkPolicy, CloakingPolicy, LocationDb, RequestId, RequestParams, ServiceRequest, UserId,
};
use lbs_parallel::{
    anonymize_partitioned, anonymize_work_stealing, anonymize_work_stealing_faulted, EngineConfig,
    FaultPlan,
};
use lbs_tree::{SpatialTree, TreeConfig, TreeKind};
use lbs_workload::{derive_seed, random_moves};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What one scenario produced and which oracles judged it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario id (density/algorithm/k/n).
    pub id: String,
    /// The scenario's derived seed — print this to replay.
    pub seed: u64,
    /// Algorithm name.
    pub algorithm: String,
    /// Whether the algorithm claims policy-aware anonymity.
    pub policy_aware: bool,
    /// Database size.
    pub users: usize,
    /// Anonymity level.
    pub k: usize,
    /// `Cost(P, D)` where the algorithm yields a rectangular bulk policy.
    pub cost: Option<u128>,
    /// Policy-aware attacker breaches found (0 required for policy-aware
    /// algorithms; evidence for baselines).
    pub breaches: usize,
    /// Number of oracle assertions that ran for this scenario.
    pub oracle_checks: usize,
}

/// Aggregate of a whole matrix run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConformanceReport {
    /// The master seed the matrix derived everything from.
    pub master_seed: u64,
    /// Successful scenario outcomes.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Failed scenarios, each message carrying its id and seed.
    pub failures: Vec<String>,
}

impl ConformanceReport {
    /// Total scenario instances attempted.
    pub fn instances(&self) -> usize {
        self.outcomes.len() + self.failures.len()
    }

    /// Every oracle held on every scenario.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Breaches the policy-aware attacker reproduced against the
    /// k-inside baselines (must be ≥ 1 per Example 1).
    pub fn baseline_breaches(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.policy_aware).map(|o| o.breaches).sum()
    }

    /// Breaches against algorithms claiming policy-aware anonymity
    /// (always 0 when [`is_clean`](Self::is_clean); any such breach is
    /// also a failure).
    pub fn policy_aware_breaches(&self) -> usize {
        self.outcomes.iter().filter(|o| o.policy_aware).map(|o| o.breaches).sum()
    }

    /// Total oracle assertions exercised.
    pub fn oracle_checks(&self) -> usize {
        self.outcomes.iter().map(|o| o.oracle_checks).sum()
    }
}

impl std::fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "conformance: {} instances under master seed {} — {} ok, {} failed; \
             {} oracle checks; {} baseline breaches reproduced, {} policy-aware breaches",
            self.instances(),
            self.master_seed,
            self.outcomes.len(),
            self.failures.len(),
            self.oracle_checks(),
            self.baseline_breaches(),
            self.policy_aware_breaches(),
        )?;
        for failure in &self.failures {
            writeln!(f, "  FAIL {failure}")?;
        }
        Ok(())
    }
}

/// Runs the full matrix for `tier` under `master` seed. Panics inside a
/// scenario are caught and reported as that scenario's failure (with its
/// seed), so one bad cell cannot take down the sweep.
pub fn run_matrix(master: u64, tier: Tier) -> ConformanceReport {
    let scenarios = scenario_matrix(master, tier);
    let mut outcomes = Vec::with_capacity(scenarios.len());
    let mut failures = Vec::new();
    for scenario in &scenarios {
        let run = catch_unwind(AssertUnwindSafe(|| run_scenario(scenario)));
        match run {
            Ok(Ok(outcome)) => outcomes.push(outcome),
            Ok(Err(message)) => {
                failures.push(format!("{} (seed {}): {message}", scenario.id, scenario.seed));
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "opaque panic".into());
                failures
                    .push(format!("{} (seed {}): panicked: {message}", scenario.id, scenario.seed));
            }
        }
    }
    ConformanceReport { master_seed: master, outcomes, failures }
}

macro_rules! ensure {
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

fn oops<E: std::fmt::Display>(what: &str) -> impl Fn(E) -> String + '_ {
    move |e| format!("{what}: {e}")
}

/// The standard oracle stack for a policy that claims policy-aware
/// k-anonymity: `core::verify` + the policy-aware attacker. Returns the
/// number of checks run.
fn assert_policy_aware(policy: &BulkPolicy, db: &LocationDb, k: usize) -> Result<usize, String> {
    verify_policy_aware(policy, db, k).map_err(|v| {
        format!("core::verify found {} violations: {:?}", v.len(), &v[..v.len().min(3)])
    })?;
    let breaches = audit_policy(policy, db, k);
    ensure!(
        breaches.is_empty(),
        "policy-aware attacker breached {} cloaks (first: {} -> {:?})",
        breaches.len(),
        breaches[0].region,
        breaches[0].candidates
    );
    Ok(2)
}

/// Runs one scenario against the oracle stack.
///
/// # Errors
/// A message describing the first violated oracle; the caller attaches
/// the scenario id and seed.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioOutcome, String> {
    let map = scenario.map();
    let k = scenario.k;
    let mut outcome = ScenarioOutcome {
        id: scenario.id.clone(),
        seed: scenario.seed,
        algorithm: scenario.algorithm.name(),
        policy_aware: scenario.algorithm.policy_aware(),
        users: scenario.users,
        k,
        cost: None,
        breaches: 0,
        oracle_checks: 0,
    };

    match scenario.algorithm {
        Algorithm::BulkFastBinary => {
            let db = scenario.database();
            let engine = Anonymizer::build(&db, map, k).map_err(oops("build"))?;
            outcome.oracle_checks += assert_policy_aware(engine.policy(), &db, k)?;
            ensure!(
                engine.policy().cost_exact() == Some(engine.cost()),
                "policy cost {:?} != matrix optimum {}",
                engine.policy().cost_exact(),
                engine.cost()
            );
            outcome.oracle_checks += 1;
            outcome.cost = Some(engine.cost());
        }
        Algorithm::BulkFastQuad => {
            let db = scenario.database();
            let tree = SpatialTree::build(&db, TreeConfig::lazy(TreeKind::Quad, map, k))
                .map_err(oops("tree"))?;
            let matrix = bulk_dp_fast_quad(&tree, k).map_err(oops("dp"))?;
            let policy = matrix.extract_policy(&tree).map_err(oops("extract"))?;
            outcome.oracle_checks += assert_policy_aware(&policy, &db, k)?;
            let cost = matrix.optimal_cost(&tree).map_err(oops("cost"))?;
            ensure!(policy.cost_exact() == Some(cost), "quad policy cost mismatch");
            outcome.oracle_checks += 1;
            outcome.cost = Some(cost);
        }
        Algorithm::BulkDense => {
            let db = scenario.database();
            let tree = SpatialTree::build(&db, TreeConfig::lazy(TreeKind::Binary, map, k))
                .map_err(oops("tree"))?;
            let dense = bulk_dp_dense(&tree, k).map_err(oops("dense dp"))?;
            let fast = bulk_dp_fast(&tree, k).map_err(oops("fast dp"))?;
            let dense_cost = dense.optimal_cost(&tree).map_err(oops("dense cost"))?;
            let fast_cost = fast.optimal_cost(&tree).map_err(oops("fast cost"))?;
            ensure!(dense_cost == fast_cost, "dense/fast DP diverge: {dense_cost} vs {fast_cost}");
            outcome.oracle_checks += 1;
            let policy = dense.extract_policy(&tree).map_err(oops("extract"))?;
            outcome.oracle_checks += assert_policy_aware(&policy, &db, k)?;
            outcome.cost = Some(dense_cost);
        }
        Algorithm::PerUserK => {
            let db = scenario.database();
            let mut requirements = KRequirements::with_default(k);
            // A seeded quarter of users demand the stricter 2k.
            for user in db.users() {
                if derive_seed(scenario.seed, 60 + user.0).is_multiple_of(4) {
                    requirements.set(user, 2 * k);
                }
            }
            let policy =
                anonymize_per_user_k(&db, map, &requirements).map_err(oops("per-user-k"))?;
            verify_per_user_k(&policy, &db, &requirements)
                .map_err(|v| format!("per-user-k verify: {} violations {:?}", v.len(), v))?;
            outcome.oracle_checks += 1;
            // Default-level audit must also be clean (every member
            // requires at least k).
            outcome.oracle_checks += assert_policy_aware(&policy, &db, k)?;
            outcome.cost = policy.cost_exact();
        }
        Algorithm::Sticky => {
            let mut db = scenario.database();
            let sticky = StickyAnonymizer::new(&db, map, k).map_err(oops("sticky build"))?;
            let policy = sticky.policy_for(&db).map_err(oops("sticky epoch 0"))?;
            outcome.oracle_checks += assert_policy_aware(&policy, &db, k)?;
            // A second epoch after seeded movement must also hold.
            let moves = random_moves(&db, &map, 0.3, 64.0, derive_seed(scenario.seed, 20));
            db.apply_moves(&moves).map_err(oops("apply moves"))?;
            let policy = sticky.policy_for(&db).map_err(oops("sticky epoch 1"))?;
            outcome.oracle_checks += assert_policy_aware(&policy, &db, k)?;
            outcome.cost = policy.cost_exact();
        }
        Algorithm::Incremental => {
            let mut db = scenario.database();
            let config = TreeConfig::lazy(TreeKind::Binary, map, k);
            let mut engine =
                IncrementalAnonymizer::new(&db, config, k).map_err(oops("incremental build"))?;
            for round in 0..3u64 {
                if round > 0 {
                    let moves =
                        random_moves(&db, &map, 0.25, 96.0, derive_seed(scenario.seed, 20 + round));
                    db.apply_moves(&moves).map_err(oops("apply moves"))?;
                    engine.apply_moves(&moves).map_err(oops("incremental moves"))?;
                }
                let fresh = Anonymizer::build(&db, map, k).map_err(oops("fresh build"))?;
                let inc_cost = engine.optimal_cost().map_err(oops("incremental cost"))?;
                ensure!(
                    inc_cost == fresh.cost(),
                    "round {round}: incremental cost {inc_cost} != fresh {}",
                    fresh.cost()
                );
                outcome.oracle_checks += 1;
                let policy = engine.policy().map_err(oops("incremental policy"))?;
                outcome.oracle_checks += assert_policy_aware(&policy, &db, k)?;
                outcome.cost = Some(inc_cost);
            }
        }
        Algorithm::Engine { workers } => {
            let db = scenario.database();
            let servers = 8;
            let reference =
                anonymize_partitioned(&db, map, k, servers).map_err(oops("sequential"))?;
            let config = EngineConfig { workers, ..EngineConfig::default() };
            let pooled = anonymize_work_stealing(&db, map, k, servers, &config, None)
                .map_err(oops("work stealing"))?;
            ensure!(
                pooled.total_cost == reference.total_cost,
                "cost diverges at {workers} workers: {} vs {}",
                pooled.total_cost,
                reference.total_cost
            );
            for (user, region) in reference.policy.iter() {
                ensure!(
                    pooled.policy.cloak_of(user) == Some(region),
                    "cloak of {user} differs at {workers} workers"
                );
            }
            outcome.oracle_checks += 2;
            outcome.oracle_checks += assert_policy_aware(&pooled.policy, &db, k)?;
            outcome.cost = Some(pooled.total_cost);
        }
        Algorithm::EngineFaulted { workers, plan_seed } => {
            let db = scenario.database();
            let servers = 8;
            let reference =
                anonymize_partitioned(&db, map, k, servers).map_err(oops("sequential"))?;
            let tasks = reference.servers.len();
            let plan = FaultPlan::seeded(derive_seed(scenario.seed, 30 + plan_seed), tasks);
            let config = EngineConfig {
                workers,
                max_task_retries: plan.max_panic_attempts(),
                ..EngineConfig::default()
            };
            let metrics = Metrics::new();
            let faulted = anonymize_work_stealing_faulted(
                &db,
                map,
                k,
                servers,
                &config,
                Some(&metrics),
                Some(&plan),
            )
            .map_err(oops("faulted run"))?;
            ensure!(
                faulted.total_cost == reference.total_cost,
                "faulted cost diverges: {} vs {}",
                faulted.total_cost,
                reference.total_cost
            );
            for (user, region) in reference.policy.iter() {
                ensure!(
                    faulted.policy.cloak_of(user) == Some(region),
                    "cloak of {user} differs after fault recovery"
                );
            }
            ensure!(
                metrics.get(Counter::FaultsInjected) == plan.total_injected_panics(),
                "injected {} faults, planned {}",
                metrics.get(Counter::FaultsInjected),
                plan.total_injected_panics()
            );
            ensure!(
                metrics.get(Counter::TaskRetries) == plan.total_injected_panics(),
                "retries {} != injected panics {}",
                metrics.get(Counter::TaskRetries),
                plan.total_injected_panics()
            );
            outcome.oracle_checks += 4;
            outcome.oracle_checks += assert_policy_aware(&faulted.policy, &db, k)?;
            outcome.cost = Some(faulted.total_cost);
        }
        Algorithm::Casper | Algorithm::KInsideQuad | Algorithm::KInsideBinary => {
            let db = scenario.database();
            let policy = match scenario.algorithm {
                Algorithm::Casper => {
                    Casper::build(&db, map, k).map_err(oops("casper"))?.materialize(&db)
                }
                Algorithm::KInsideQuad => {
                    PolicyUnawareQuad::build(&db, map, k).map_err(oops("puq"))?.materialize(&db)
                }
                _ => PolicyUnawareBinary::build(&db, map, k).map_err(oops("pub"))?.materialize(&db),
            };
            outcome.oracle_checks += assert_k_inside(&policy, &db, k)?;
            outcome.breaches = audit_policy(&policy, &db, k).len();
            outcome.cost = policy.cost_exact();
        }
        Algorithm::Circular => {
            let db = scenario.database();
            let side = (map.x1 - map.x0) as u64;
            let centers: Vec<Point> = (0..4u64)
                .map(|i| {
                    Point::new(
                        (derive_seed(scenario.seed, 40 + i) % side) as i64,
                        (derive_seed(scenario.seed, 50 + i) % side) as i64,
                    )
                })
                .collect();
            let circular = CircularKInside::new(centers, k).map_err(oops("circular"))?;
            let policy = circular.materialize(&db);
            outcome.oracle_checks += assert_k_inside(&policy, &db, k)?;
            outcome.breaches = audit_policy(&policy, &db, k).len();
        }
        Algorithm::TinyOracle => {
            let db = scenario.database();
            let engine = Anonymizer::build(&db, map, k).map_err(oops("build"))?;
            outcome.oracle_checks += assert_policy_aware(engine.policy(), &db, k)?;
            // Brute-force optimality: enumerate every configuration.
            let brute = brute_force_optimal_cost(engine.tree(), k);
            ensure!(
                brute == Some(engine.cost()),
                "brute force optimum {brute:?} != DP cost {}",
                engine.cost()
            );
            outcome.oracle_checks += 1;
            // Literal Definition 6: every user requests, all PREs are
            // enumerated, k pairwise sender-disjoint ones must exist.
            let policy = engine.policy().clone();
            let observed: Vec<_> = db
                .iter()
                .enumerate()
                .map(|(i, (user, location))| {
                    let sr = ServiceRequest::new(
                        user,
                        location,
                        RequestParams::from_pairs([("poi", "clinic")]),
                    );
                    policy
                        .anonymize(&db, &sr, RequestId(i as u64))
                        // lbs-lint: allow(location-taint, reason = "user id only; the id taints through the (user, location) tuple binder but no coordinate is in the message")
                        .ok_or_else(|| format!("{user} not cloaked"))
                })
                .collect::<Result<_, _>>()?;
            ensure!(
                literal_k_anonymity(&observed, &db, &policy, k),
                "literal Definition-6 {k}-anonymity fails on the optimal policy"
            );
            ensure!(
                !literal_k_anonymity(&observed, &db, &policy, db.len() + 1),
                "literal {}-anonymity cannot hold with {} users",
                db.len() + 1,
                db.len()
            );
            outcome.oracle_checks += 2;
            outcome.cost = Some(engine.cost());
        }
        Algorithm::CraftedBreach => {
            // Example 1, scaled: the k-inside (Casper) policy produces
            // the semi-quadrant R3 whose *group* is a single user; the
            // policy-aware attacker must identify her.
            let variant =
                scenario.id.rsplit("#v").next().and_then(|v| v.parse::<u32>().ok()).unwrap_or(0);
            let scale = 1i64 << variant;
            let db = LocationDb::from_rows([
                (UserId(0), Point::new(0, 0)),                 // Alice
                (UserId(1), Point::new(0, scale)),             // Bob
                (UserId(2), Point::new(0, 3 * scale)),         // Carol
                (UserId(3), Point::new(2 * scale, 0)),         // Sam
                (UserId(4), Point::new(3 * scale, 3 * scale)), // Tom
            ])
            .map_err(|e| format!("table1 db: {e:?}"))?;
            let crafted_map = Rect::square(0, 0, 4 * scale);
            let policy =
                Casper::build(&db, crafted_map, 2).map_err(oops("casper"))?.materialize(&db);
            outcome.oracle_checks += assert_k_inside(&policy, &db, 2)?;
            let breaches = audit_policy(&policy, &db, 2);
            ensure!(
                !breaches.is_empty(),
                "Example-1 breach NOT reproduced at scale {scale}: the k-inside \
                 baseline unexpectedly withstood the policy-aware attacker"
            );
            ensure!(
                breaches.iter().any(|b| b.candidates == vec![UserId(2)]),
                "expected the attacker to identify Carol (u2); got {:?}",
                breaches.iter().map(|b| &b.candidates).collect::<Vec<_>>()
            );
            outcome.oracle_checks += 2;
            outcome.breaches = breaches.len();
            outcome.cost = policy.cost_exact();
        }
    }

    Ok(outcome)
}

/// The baseline sanity oracle: whatever a k-inside policy cloaks, the
/// cloak must mask its sender and cover ≥ k users (Definition 3 +
/// k-inside). Returns the number of checks run.
fn assert_k_inside(policy: &BulkPolicy, db: &LocationDb, k: usize) -> Result<usize, String> {
    for (user, region) in policy.iter() {
        let point = db.location(user).ok_or_else(|| format!("{user} not in db"))?;
        ensure!(region.contains(&point), "{user}: cloak does not mask its sender");
        let inside = db.users_in(region).len();
        ensure!(inside >= k, "{user}: cloak covers only {inside} < k={k} users");
    }
    Ok(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Density, DEFAULT_MASTER_SEED};

    fn scenario(users: usize, k: usize, algorithm: Algorithm) -> Scenario {
        Scenario {
            id: format!("test/{}/k{k}/n{users}", algorithm.name()),
            seed: 0xFEED,
            density: Density::Uniform,
            users,
            k,
            algorithm,
        }
    }

    #[test]
    fn bulk_fast_scenario_passes_the_oracles() {
        let outcome = run_scenario(&scenario(64, 4, Algorithm::BulkFastBinary)).unwrap();
        assert_eq!(outcome.breaches, 0);
        assert!(outcome.oracle_checks >= 3);
        assert!(outcome.cost.is_some());
    }

    #[test]
    fn crafted_breach_scenario_reproduces_example_1() {
        for variant in 0..4 {
            let mut s = scenario(5, 2, Algorithm::CraftedBreach);
            s.id = format!("{}#v{variant}", s.id);
            let outcome = run_scenario(&s).unwrap();
            assert!(outcome.breaches >= 1, "variant {variant}");
            assert!(!outcome.policy_aware);
        }
    }

    #[test]
    fn tiny_oracle_scenario_runs_both_exponential_oracles() {
        let outcome = run_scenario(&scenario(5, 2, Algorithm::TinyOracle)).unwrap();
        assert!(outcome.oracle_checks >= 5);
        assert_eq!(outcome.breaches, 0);
    }

    #[test]
    fn fault_soak_scenario_recovers_bit_identically() {
        let outcome =
            run_scenario(&scenario(192, 4, Algorithm::EngineFaulted { workers: 3, plan_seed: 1 }))
                .unwrap();
        assert_eq!(outcome.breaches, 0);
        assert!(outcome.oracle_checks >= 6);
    }

    #[test]
    fn failures_carry_id_and_seed() {
        // An infeasible scenario (k > |D|) must fail with a replayable
        // message, not panic the matrix.
        let mut s = scenario(4, 2, Algorithm::BulkFastBinary);
        s.k = 50; // users=4 < k
        let report = ConformanceReport {
            master_seed: DEFAULT_MASTER_SEED,
            outcomes: vec![],
            failures: vec![match run_scenario(&s) {
                Err(e) => format!("{} (seed {}): {e}", s.id, s.seed),
                Ok(_) => panic!("infeasible scenario must fail"),
            }],
        };
        assert!(!report.is_clean());
        assert!(report.failures[0].contains("seed 65261"), "{}", report.failures[0]);
    }
}
