//! The checked-in golden corpus: frozen optimal-policy outputs for a
//! fixed sub-matrix of scenarios.
//!
//! Each record pins the exact cost, group structure, and a fingerprint
//! of the full user→cloak assignment for one (density, k, tree) cell
//! under [`DEFAULT_MASTER_SEED`](crate::DEFAULT_MASTER_SEED). Any DP,
//! tree, or extraction refactor that silently shifts an optimal policy
//! trips the corpus; intentional changes are re-blessed with
//! `lbs conformance --bless true --golden tests/golden` (or
//! [`bless`]) and reviewed as a diff.

use crate::scenario::Density;
use lbs_core::{bulk_dp_fast, bulk_dp_fast_quad};
use lbs_model::BulkPolicy;
use lbs_tree::{SpatialTree, TreeConfig, TreeKind};
use lbs_workload::derive_seed;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One frozen conformance output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenRecord {
    /// Record id, also the file stem: `<density>-k<k>-<tree>`.
    pub id: String,
    /// The derived seed the database was generated from.
    pub seed: u64,
    /// Density profile name.
    pub density: String,
    /// Database size.
    pub users: usize,
    /// Anonymity level.
    pub k: usize,
    /// Tree family: `binary` or `quad`.
    pub tree: String,
    /// The optimal `Cost(P, D)`.
    pub cost: u128,
    /// Number of cloak groups in the optimal policy.
    pub groups: usize,
    /// Smallest group (≥ k by construction).
    pub min_group: usize,
    /// FNV-1a over the sorted `user:cloak` assignment strings — pins the
    /// exact policy, not just its cost.
    pub fingerprint: u64,
}

/// The corpus cells: every density × k ∈ {2, 8} × {binary, quad} at 64
/// users. Pure function of `master`.
fn cases(master: u64) -> Vec<(Density, usize, TreeKind)> {
    let _ = master;
    let mut out = Vec::new();
    for density in Density::ALL {
        for k in [2usize, 8] {
            for kind in [TreeKind::Binary, TreeKind::Quad] {
                out.push((density, k, kind));
            }
        }
    }
    out
}

fn tree_name(kind: TreeKind) -> &'static str {
    match kind {
        TreeKind::Binary => "binary",
        TreeKind::Quad => "quad",
    }
}

/// FNV-1a fingerprint of the full assignment, independent of iteration
/// order (assignments are sorted before hashing).
pub fn policy_fingerprint(policy: &BulkPolicy) -> u64 {
    let mut lines: Vec<String> =
        policy.iter().map(|(user, region)| format!("{user}:{region}")).collect();
    lines.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in &lines {
        for b in line.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= 0x0A;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Computes the corpus records for `master` (what [`bless`] writes and
/// [`check`] recomputes).
///
/// # Errors
/// Propagates tree/DP failures as messages.
pub fn compute_corpus(master: u64) -> Result<Vec<GoldenRecord>, String> {
    let users = 64usize;
    let map = lbs_geom::Rect::square(0, 0, 1024);
    cases(master)
        .into_iter()
        .map(|(density, k, kind)| {
            let id = format!("{}-k{}-{}", density.name(), k, tree_name(kind));
            // Same id-hash → seed scheme as the scenario matrix.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in id.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let seed = derive_seed(master, h);
            let db = density.generate(users, map, derive_seed(seed, 10));
            let tree = SpatialTree::build(&db, TreeConfig::lazy(kind, map, k))
                .map_err(|e| format!("{id}: tree: {e}"))?;
            let matrix = match kind {
                TreeKind::Binary => bulk_dp_fast(&tree, k),
                TreeKind::Quad => bulk_dp_fast_quad(&tree, k),
            }
            .map_err(|e| format!("{id}: dp: {e}"))?;
            let policy = matrix.extract_policy(&tree).map_err(|e| format!("{id}: extract: {e}"))?;
            let cost = matrix.optimal_cost(&tree).map_err(|e| format!("{id}: cost: {e}"))?;
            Ok(GoldenRecord {
                id,
                seed,
                density: density.name().to_string(),
                users,
                k,
                tree: tree_name(kind).to_string(),
                cost,
                groups: policy.groups().len(),
                min_group: policy.min_group_size().unwrap_or(0),
                fingerprint: policy_fingerprint(&policy),
            })
        })
        .collect()
}

/// Regenerates `dir/*.json` from scratch (the `--bless` path). Returns
/// the number of records written.
///
/// # Errors
/// Computation or I/O failures as messages.
pub fn bless(dir: &Path, master: u64) -> Result<usize, String> {
    let records = compute_corpus(master)?;
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    for record in &records {
        let path = dir.join(format!("{}.json", record.id));
        let json = serde_json::to_string_pretty(record)
            .map_err(|e| format!("{}: serialize: {e}", record.id))?;
        std::fs::write(&path, json + "\n")
            .map_err(|e| format!("{}: write: {e}", path.display()))?;
    }
    Ok(records.len())
}

/// Recomputes the corpus and diffs it against `dir/*.json`. Returns the
/// number of records checked.
///
/// # Errors
/// One message per missing/stale/divergent record (with its seed), so a
/// red check replays directly.
pub fn check(dir: &Path, master: u64) -> Result<usize, Vec<String>> {
    let records = compute_corpus(master).map_err(|e| vec![e])?;
    let mut problems = Vec::new();
    for fresh in &records {
        let path = dir.join(format!("{}.json", fresh.id));
        let stored: Option<GoldenRecord> =
            std::fs::read_to_string(&path).ok().and_then(|raw| serde_json::from_str(&raw).ok());
        match stored {
            None => problems.push(format!(
                "{}: missing or unreadable golden file {} — run with --bless",
                fresh.id,
                path.display()
            )),
            Some(stored) if &stored != fresh => {
                problems.push(format!(
                "{} (seed {}): golden drift — stored cost {} fp {:#x}, computed cost {} fp {:#x}",
                fresh.id, fresh.seed, stored.cost, stored.fingerprint, fresh.cost, fresh.fingerprint
            ))
            }
            Some(_) => {}
        }
    }
    if problems.is_empty() {
        Ok(records.len())
    } else {
        Err(problems)
    }
}

/// One frozen sharded-pipeline output: the shared-nothing partition of
/// the jurisdiction tree at a fixed shard count, with the merged policy
/// pinned by fingerprint and the per-shard parts pinned individually.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedGoldenRecord {
    /// Record id, also the file stem: `sharded_<n>`.
    pub id: String,
    /// The derived seed the database was generated from.
    pub seed: u64,
    /// Database size.
    pub users: usize,
    /// Anonymity level.
    pub k: usize,
    /// Shards requested from the planner.
    pub shards_requested: usize,
    /// Shards the plan settled on (the planner backs off rather than
    /// produce an empty jurisdiction).
    pub shards_actual: usize,
    /// Exact aggregate cost of the merged sharded policy.
    pub cost: u128,
    /// Exact cost of the single-shard optimum over the same database —
    /// pins the paper's ≤1% divergence bound alongside the policy itself.
    pub single_cost: u128,
    /// FNV-1a fingerprint of the merged whole-population assignment.
    pub merged_fingerprint: u64,
    /// Per-shard policy fingerprints, in plan order.
    pub shard_fingerprints: Vec<u64>,
}

/// The sharded corpus cells: uniform 160-user population at k = 4,
/// partitioned 2/4/8 ways. (Uniform, not clustered: the greedy
/// partitioner backs off to fewer jurisdictions when a dense cluster
/// swallows the population, and the corpus wants real splits.) Pure
/// function of `master`.
///
/// # Errors
/// Propagates planning/DP failures as messages.
pub fn compute_sharded_corpus(master: u64) -> Result<Vec<ShardedGoldenRecord>, String> {
    let users = 160usize;
    let k = 4usize;
    let map = lbs_geom::Rect::square(0, 0, 1024);
    [2usize, 4, 8]
        .into_iter()
        .map(|shards| {
            let id = format!("sharded_{shards}");
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in id.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let seed = derive_seed(master, h);
            let db = Density::Uniform.generate(users, map, derive_seed(seed, 10));
            let outcome = lbs_runtime::sharded_bulk(&db, map, k, shards)
                .map_err(|e| format!("{id}: sharded bulk: {e}"))?;
            let single = lbs_core::Anonymizer::build(&db, map, k)
                .map_err(|e| format!("{id}: single-shard: {e}"))?;
            Ok(ShardedGoldenRecord {
                id,
                seed,
                users,
                k,
                shards_requested: shards,
                shards_actual: outcome.plan.len(),
                cost: outcome.cost,
                single_cost: single.cost(),
                merged_fingerprint: policy_fingerprint(&outcome.merged),
                shard_fingerprints: outcome.policies.iter().map(policy_fingerprint).collect(),
            })
        })
        .collect()
}

/// Regenerates `dir/sharded_*.json` (the `--bless` path). Returns the
/// number of records written.
///
/// # Errors
/// Computation or I/O failures as messages.
pub fn bless_sharded(dir: &Path, master: u64) -> Result<usize, String> {
    let records = compute_sharded_corpus(master)?;
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    for record in &records {
        let path = dir.join(format!("{}.json", record.id));
        let json = serde_json::to_string_pretty(record)
            .map_err(|e| format!("{}: serialize: {e}", record.id))?;
        std::fs::write(&path, json + "\n")
            .map_err(|e| format!("{}: write: {e}", path.display()))?;
    }
    Ok(records.len())
}

/// Recomputes the sharded corpus and diffs it against `dir/sharded_*.json`.
/// Returns the number of records checked.
///
/// # Errors
/// One message per missing/stale/divergent record, carrying its seed.
pub fn check_sharded(dir: &Path, master: u64) -> Result<usize, Vec<String>> {
    let records = compute_sharded_corpus(master).map_err(|e| vec![e])?;
    let mut problems = Vec::new();
    for fresh in &records {
        let path = dir.join(format!("{}.json", fresh.id));
        let stored: Option<ShardedGoldenRecord> =
            std::fs::read_to_string(&path).ok().and_then(|raw| serde_json::from_str(&raw).ok());
        match stored {
            None => problems.push(format!(
                "{}: missing or unreadable sharded golden {} — run with --bless",
                fresh.id,
                path.display()
            )),
            Some(stored) if &stored != fresh => problems.push(format!(
                "{} (seed {}): sharded golden drift — stored cost {} fp {:#x}, \
                 computed cost {} fp {:#x}",
                fresh.id,
                fresh.seed,
                stored.cost,
                stored.merged_fingerprint,
                fresh.cost,
                fresh.merged_fingerprint
            )),
            Some(_) => {}
        }
    }
    if problems.is_empty() {
        Ok(records.len())
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DEFAULT_MASTER_SEED;

    #[test]
    fn corpus_is_deterministic_and_policy_sensitive() {
        let a = compute_corpus(DEFAULT_MASTER_SEED).unwrap();
        let b = compute_corpus(DEFAULT_MASTER_SEED).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        for record in &a {
            assert!(record.min_group >= record.k, "{}", record.id);
            assert!(record.cost > 0, "{}", record.id);
        }
        let other = compute_corpus(DEFAULT_MASTER_SEED ^ 1).unwrap();
        assert!(
            a.iter().zip(&other).any(|(x, y)| x.fingerprint != y.fingerprint),
            "a different master seed must move at least one fingerprint"
        );
    }

    #[test]
    fn sharded_corpus_is_deterministic_and_within_the_divergence_bound() {
        let a = compute_sharded_corpus(DEFAULT_MASTER_SEED).unwrap();
        let b = compute_sharded_corpus(DEFAULT_MASTER_SEED).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        for record in &a {
            assert!(record.shards_actual >= 2, "{}: did not split", record.id);
            assert_eq!(record.shard_fingerprints.len(), record.shards_actual, "{}", record.id);
            assert!(
                record.cost >= record.single_cost,
                "{}: sharding cannot beat the optimum",
                record.id
            );
            let divergence = lbs_runtime::divergence_pct(record.cost, record.single_cost);
            assert!(
                divergence <= 1.0,
                "{}: divergence {divergence:.3}% breaks the paper's 1% bound",
                record.id
            );
        }
    }

    #[test]
    fn sharded_bless_then_check_round_trips() {
        let dir = std::env::temp_dir().join(format!("lbs-golden-sharded-{}", std::process::id()));
        assert_eq!(bless_sharded(&dir, DEFAULT_MASTER_SEED).unwrap(), 3);
        assert_eq!(check_sharded(&dir, DEFAULT_MASTER_SEED).unwrap(), 3);
        let victim = dir.join("sharded_4.json");
        let mut record: ShardedGoldenRecord =
            serde_json::from_str(&std::fs::read_to_string(&victim).unwrap()).unwrap();
        record.merged_fingerprint ^= 1;
        std::fs::write(&victim, serde_json::to_string(&record).unwrap()).unwrap();
        let problems = check_sharded(&dir, DEFAULT_MASTER_SEED).unwrap_err();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("sharded golden drift"), "{}", problems[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bless_then_check_round_trips() {
        let dir = std::env::temp_dir().join(format!("lbs-golden-{}", std::process::id()));
        let written = bless(&dir, DEFAULT_MASTER_SEED).unwrap();
        assert_eq!(written, 12);
        assert_eq!(check(&dir, DEFAULT_MASTER_SEED).unwrap(), 12);
        // Tampering with a stored record must be detected.
        let victim = dir.join("uniform-k2-binary.json");
        let mut record: GoldenRecord =
            serde_json::from_str(&std::fs::read_to_string(&victim).unwrap()).unwrap();
        record.cost += 1;
        std::fs::write(&victim, serde_json::to_string(&record).unwrap()).unwrap();
        let problems = check(&dir, DEFAULT_MASTER_SEED).unwrap_err();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("golden drift"), "{}", problems[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
