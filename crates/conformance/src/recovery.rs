//! Crash-recovery and degradation-ladder conformance.
//!
//! Two oracles for the `lbs-runtime` service layer:
//!
//! 1. **Crash-point sweep** — one reference run ingests churn batches,
//!    committing and checkpointing as a live service would. Then, for
//!    every crash point (each WAL record boundary, several mid-record
//!    tears per record, plus torn-temp-checkpoint and corrupt-newest-
//!    checkpoint variants), a fresh directory is materialized exactly as
//!    the disk would look at that instant and recovered. The recovered
//!    committed [`BulkPolicy`](lbs_model::BulkPolicy) must be
//!    **bit-identical** (`encode_policy` bytes) to the reference run's
//!    policy at the same durable sequence number — no crash point may
//!    lose, duplicate, or reorder a committed update.
//! 2. **Degradation-ladder audit** — the ladder's rungs (fresh,
//!    committed, coarsened, shed) are exercised by deriving the degraded
//!    policy for a churned database that was never recommitted, then
//!    facing the full oracle stack: `core::verify` plus the
//!    PRE-enumerating policy-aware attacker, evaluated over the *served*
//!    population (shed senders emit no request, so they are outside the
//!    attacker's observation set by construction).

use lbs_attack::audit_policy;
use lbs_core::{verify_policy_aware, Anonymizer};
use lbs_geom::{Point, Rect};
use lbs_model::{encode_policy, LocationDb, Move, UserId, UserUpdate};
use lbs_runtime::{
    list_checkpoints, scan, ManualClock, Rung, RuntimeBuilder, RuntimeConfig, WAL_FILE,
};
use lbs_workload::derive_seed;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// Parameters of one crash-point sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CrashSweepConfig {
    /// Master seed deriving the population and every churn batch.
    pub seed: u64,
    /// Initial population size.
    pub users: usize,
    /// Anonymity level.
    pub k: usize,
    /// Churn batches the reference run ingests (one commit each).
    pub rounds: u64,
    /// Checkpoint cadence of the reference run (commits per checkpoint).
    pub checkpoint_every: u64,
}

impl Default for CrashSweepConfig {
    fn default() -> Self {
        CrashSweepConfig { seed: 0x5EED_C4A5, users: 48, k: 4, rounds: 13, checkpoint_every: 3 }
    }
}

/// What one crash-point sweep covered and found.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrashSweepReport {
    /// The sweep's configuration (replay with `lbs recovery-smoke`).
    pub config: CrashSweepConfig,
    /// Total crash points recovered and compared.
    pub points: usize,
    /// Crash points exactly at a WAL record boundary.
    pub boundary_points: usize,
    /// Crash points tearing a WAL record mid-frame.
    pub mid_record_points: usize,
    /// Variant points with a torn checkpoint temp file left behind.
    pub torn_checkpoint_points: usize,
    /// Variant points with the newest checkpoint corrupted in place
    /// (recovery must fall back to an older one).
    pub corrupt_checkpoint_points: usize,
    /// Longest replay (in WAL records) any crash point required.
    pub max_replay: usize,
    /// Bit-identity violations, each naming its crash point.
    pub failures: Vec<String>,
}

impl CrashSweepReport {
    /// Every crash point recovered bit-identically.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for CrashSweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "crash sweep: {} points under seed {} ({} boundary, {} mid-record, \
             {} torn-checkpoint, {} corrupt-checkpoint), max replay {} records — {}",
            self.points,
            self.config.seed,
            self.boundary_points,
            self.mid_record_points,
            self.torn_checkpoint_points,
            self.corrupt_checkpoint_points,
            self.max_replay,
            if self.is_clean() { "all bit-identical" } else { "FAILURES" },
        )?;
        for failure in &self.failures {
            writeln!(f, "  FAIL {failure}")?;
        }
        Ok(())
    }
}

fn side() -> i64 {
    64
}

fn seeded_db(seed: u64, users: usize) -> Result<LocationDb, String> {
    LocationDb::from_rows((0..users).map(|i| {
        let i = i as u64;
        (
            UserId(i),
            Point::new(
                (derive_seed(seed, 2 * i) % side() as u64) as i64,
                (derive_seed(seed, 2 * i + 1) % side() as u64) as i64,
            ),
        )
    }))
    .map_err(|e| format!("seeded db: {e:?}"))
}

/// One deterministic churn batch: a few moves, an occasional insert, an
/// occasional delete — every choice derived from `(seed, round)`.
fn churn_batch(
    seed: u64,
    round: u64,
    present: &mut Vec<UserId>,
    next_id: &mut u64,
) -> Vec<UserUpdate> {
    let mut batch: Vec<UserUpdate> = Vec::new();
    for j in 0..4u64 {
        let pick = derive_seed(seed, round * 97 + j) as usize % present.len();
        let user = present[pick];
        if batch.iter().any(|u| u.user() == user) {
            continue;
        }
        batch.push(UserUpdate::Move(Move {
            user,
            to: Point::new(
                (derive_seed(seed, round * 97 + 10 + j) % side() as u64) as i64,
                (derive_seed(seed, round * 97 + 20 + j) % side() as u64) as i64,
            ),
        }));
    }
    if round.is_multiple_of(3) {
        let at = Point::new(
            (derive_seed(seed, round * 97 + 30) % side() as u64) as i64,
            (derive_seed(seed, round * 97 + 31) % side() as u64) as i64,
        );
        batch.push(UserUpdate::Insert { user: UserId(*next_id), at });
        present.push(UserId(*next_id));
        *next_id += 1;
    }
    if round % 4 == 1 && present.len() > 24 {
        if let Some(&victim) = present.iter().find(|u| !batch.iter().any(|b| b.user() == **u)) {
            batch.push(UserUpdate::Delete { user: victim });
            present.retain(|&u| u != victim);
        }
    }
    batch
}

fn runtime_builder(cfg: &CrashSweepConfig) -> RuntimeBuilder {
    let mut rc = RuntimeConfig::new(cfg.k, Rect::square(0, 0, side()));
    rc.checkpoint_every = cfg.checkpoint_every;
    RuntimeBuilder::new(rc).clock(Arc::new(ManualClock::new()))
}

/// Runs the crash-point sweep under `scratch` (a disposable directory;
/// everything it creates is removed before returning).
///
/// # Errors
/// A message when the *reference* run itself cannot be built — failures
/// of individual crash points are reported in the
/// [`CrashSweepReport::failures`] list instead.
pub fn crash_sweep(scratch: &Path, cfg: &CrashSweepConfig) -> Result<CrashSweepReport, String> {
    fn oops(what: &'static str) -> impl Fn(lbs_runtime::RuntimeError) -> String {
        move |e| format!("{what}: {e}")
    }
    let ref_dir = scratch.join("reference");
    let _ = std::fs::remove_dir_all(&ref_dir);

    // Reference run: ingest + commit every batch, checkpointing on the
    // configured cadence; per_seq[n] = committed policy bytes once
    // records 1..=n are durable and committed.
    let db0 = seeded_db(cfg.seed, cfg.users)?;
    let mut runtime = runtime_builder(cfg).create(&ref_dir, &db0).map_err(oops("create"))?;
    let mut per_seq = vec![encode_policy(runtime.committed_policy())];
    let mut present: Vec<UserId> = db0.users().collect();
    let mut next_id = cfg.users as u64;
    for round in 0..cfg.rounds {
        let batch = churn_batch(cfg.seed, round, &mut present, &mut next_id);
        runtime.apply_batch(&batch).map_err(oops("apply"))?;
        runtime.commit().map_err(oops("commit"))?;
        per_seq.push(encode_policy(runtime.committed_policy()));
    }
    drop(runtime);

    // The on-disk artifacts the sweep slices up.
    let wal_raw = std::fs::read(ref_dir.join(WAL_FILE)).map_err(|e| format!("read wal: {e}"))?;
    let (records, valid_len) = scan(&wal_raw);
    if valid_len != wal_raw.len() as u64 || records.len() != cfg.rounds as usize {
        return Err(format!(
            "reference wal inconsistent: {} valid of {} bytes, {} records",
            valid_len,
            wal_raw.len(),
            records.len()
        ));
    }
    let checkpoints = list_checkpoints(&ref_dir).map_err(|e| format!("list: {e}"))?;

    // Crash points: offset 0, and for every record a mid-frame tear just
    // after its start, one at mid-frame, one a byte short, and its exact
    // end boundary.
    let mut offsets: Vec<u64> = vec![0];
    let mut start = 0u64;
    for record in &records {
        let span = record.end_offset - start;
        for tear in [start + 1, start + span / 2, record.end_offset - 1, record.end_offset] {
            if !offsets.contains(&tear) {
                offsets.push(tear);
            }
        }
        start = record.end_offset;
    }

    let mut report = CrashSweepReport {
        config: *cfg,
        points: 0,
        boundary_points: 0,
        mid_record_points: 0,
        torn_checkpoint_points: 0,
        corrupt_checkpoint_points: 0,
        max_replay: 0,
        failures: Vec::new(),
    };

    for (index, &offset) in offsets.iter().enumerate() {
        // Plain crash at `offset`, plus periodic torn/corrupt-checkpoint
        // variants of the same point.
        let mut variants = vec!["plain"];
        if index % 4 == 2 {
            variants.push("torn-tmp");
        }
        if index % 4 == 0 {
            variants.push("corrupt-newest");
        }
        for variant in variants {
            match run_crash_point(
                scratch,
                cfg,
                &wal_raw,
                &records,
                &checkpoints,
                &per_seq,
                offset,
                variant,
            ) {
                Ok(outcome) => {
                    report.points += 1;
                    report.max_replay = report.max_replay.max(outcome.replayed);
                    match variant {
                        "torn-tmp" => report.torn_checkpoint_points += 1,
                        "corrupt-newest" => report.corrupt_checkpoint_points += 1,
                        _ if outcome.boundary => report.boundary_points += 1,
                        _ => report.mid_record_points += 1,
                    }
                }
                Err(message) => {
                    report.points += 1;
                    report.failures.push(format!("offset {offset} [{variant}]: {message}"));
                }
            }
        }
    }

    let _ = std::fs::remove_dir_all(&ref_dir);
    Ok(report)
}

struct PointOutcome {
    replayed: usize,
    boundary: bool,
}

/// Materializes the disk state of one crash instant and recovers it.
#[allow(clippy::too_many_arguments)]
fn run_crash_point(
    scratch: &Path,
    cfg: &CrashSweepConfig,
    wal_raw: &[u8],
    records: &[lbs_runtime::WalRecord],
    checkpoints: &[(u64, std::path::PathBuf)],
    per_seq: &[bytes::Bytes],
    offset: u64,
    variant: &str,
) -> Result<PointOutcome, String> {
    // Records fully durable at the instant of the crash.
    let durable = records.iter().filter(|r| r.end_offset <= offset).count() as u64;
    let boundary = offset == 0 || records.iter().any(|r| r.end_offset == offset);

    let dir = scratch.join(format!("crash-{offset}-{variant}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir: {e}"))?;
    std::fs::write(dir.join(WAL_FILE), &wal_raw[..offset as usize])
        .map_err(|e| format!("write wal slice: {e}"))?;
    // Only checkpoints that existed by this instant: a checkpoint at seq
    // s is written strictly after record s is durable.
    let mut copied: Vec<u64> = Vec::new();
    for (seq, path) in checkpoints {
        if *seq <= durable {
            let name = path.file_name().ok_or("checkpoint without name")?;
            std::fs::copy(path, dir.join(name)).map_err(|e| format!("copy checkpoint: {e}"))?;
            copied.push(*seq);
        }
    }
    copied.sort_unstable();
    match variant {
        // A crash mid-checkpoint additionally leaves a torn temp file,
        // which recovery must ignore entirely.
        "torn-tmp" => {
            std::fs::write(
                dir.join(format!("checkpoint-{:012}.ckpt.tmp", durable + 1)),
                [0x5A; 37],
            )
            .map_err(|e| format!("write torn tmp: {e}"))?;
        }
        // Media corruption of the newest checkpoint: recovery must fall
        // back to the next older one (and still be bit-identical). Only
        // meaningful when an older checkpoint exists to fall back to.
        "corrupt-newest" if copied.len() >= 2 => {
            let newest = copied[copied.len() - 1];
            let path = dir.join(format!("checkpoint-{newest:012}.ckpt"));
            let mut raw = std::fs::read(&path).map_err(|e| format!("read newest: {e}"))?;
            let mid = raw.len() / 2;
            raw[mid] ^= 0x10;
            std::fs::write(&path, &raw).map_err(|e| format!("corrupt newest: {e}"))?;
        }
        _ => {}
    }

    let (recovered, recovery) =
        runtime_builder(cfg).recover(&dir).map_err(|e| format!("recover: {e}"))?;
    let expected = &per_seq[durable as usize];
    let actual = encode_policy(recovered.committed_policy());
    let mut problems = Vec::new();
    if actual != *expected {
        problems.push(format!(
            "policy NOT bit-identical at durable seq {durable} \
             ({} vs {} bytes)",
            actual.len(),
            expected.len()
        ));
    }
    if recovered.epoch() != durable + 1 {
        problems.push(format!("epoch {} != {}", recovered.epoch(), durable + 1));
    }
    if recovered.durable_seq() != durable {
        problems.push(format!("durable seq {} != {durable}", recovered.durable_seq()));
    }
    if variant == "corrupt-newest" && copied.len() >= 2 {
        let fallback = copied[copied.len() - 2];
        if recovery.checkpoint_seq != fallback {
            problems.push(format!(
                "recovered from checkpoint {} instead of falling back to {fallback}",
                recovery.checkpoint_seq
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    if problems.is_empty() {
        Ok(PointOutcome { replayed: recovery.replayed, boundary })
    } else {
        Err(problems.join("; "))
    }
}

/// Parameters of one sharded crash sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ShardedSweepConfig {
    /// Master seed deriving the population and every churn batch.
    pub seed: u64,
    /// Initial population size.
    pub users: usize,
    /// Anonymity level.
    pub k: usize,
    /// Shards requested.
    pub shards: usize,
    /// Churn batches pumped through the sharded reference run.
    pub rounds: u64,
    /// Per-shard checkpoint cadence (commits per checkpoint).
    pub checkpoint_every: u64,
}

impl Default for ShardedSweepConfig {
    fn default() -> Self {
        ShardedSweepConfig {
            seed: 0x5EED_54A2,
            users: 96,
            k: 4,
            shards: 2,
            rounds: 12,
            checkpoint_every: 2,
        }
    }
}

/// What one sharded crash sweep covered and found.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedSweepReport {
    /// The sweep's configuration.
    pub config: ShardedSweepConfig,
    /// Shards the plan actually produced.
    pub shards: usize,
    /// Crash points recovered and compared (per shard × offset ×
    /// variant).
    pub points: usize,
    /// Variant points with a torn checkpoint temp file on the crashed
    /// shard.
    pub torn_checkpoint_points: usize,
    /// Variant points with the crashed shard's newest checkpoint
    /// corrupted in place.
    pub corrupt_checkpoint_points: usize,
    /// Longest replay (in WAL records) any crashed shard required.
    pub max_replay: usize,
    /// Isolation or bit-identity violations, each naming its point.
    pub failures: Vec<String>,
}

impl ShardedSweepReport {
    /// Every crash point recovered bit-identically and in isolation.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for ShardedSweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sharded crash sweep: {} points across {} shards under seed {} \
             ({} torn-checkpoint, {} corrupt-checkpoint), max replay {} records — {}",
            self.points,
            self.shards,
            self.config.seed,
            self.torn_checkpoint_points,
            self.corrupt_checkpoint_points,
            self.max_replay,
            if self.is_clean() { "all isolated and bit-identical" } else { "FAILURES" },
        )?;
        for failure in &self.failures {
            writeln!(f, "  FAIL {failure}")?;
        }
        Ok(())
    }
}

fn copy_tree(from: &Path, to: &Path) -> Result<(), String> {
    std::fs::create_dir_all(to).map_err(|e| format!("mkdir {}: {e}", to.display()))?;
    let entries = std::fs::read_dir(from).map_err(|e| format!("read {}: {e}", from.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", from.display()))?;
        let src = entry.path();
        let dst = to.join(entry.file_name());
        let kind = entry.file_type().map_err(|e| format!("stat {}: {e}", src.display()))?;
        if kind.is_dir() {
            copy_tree(&src, &dst)?;
        } else {
            std::fs::copy(&src, &dst).map_err(|e| format!("copy {}: {e}", src.display()))?;
        }
    }
    Ok(())
}

/// Runs the per-shard crash sweep under `scratch`: a sharded reference
/// run is driven through seeded churn, then for every crash point on
/// every shard (WAL boundary and mid-record tears, torn-temp and
/// corrupt-newest checkpoint variants) the *whole* sharded directory is
/// materialized with only that shard's artifacts damaged and recovered.
/// The crashed shard must come back bit-identical to the reference at
/// its surviving durable prefix, and — the shared-nothing isolation
/// oracle — every *other* shard must recover bit-identical to its full,
/// undamaged reference state.
///
/// # Errors
/// A message when the reference run itself cannot be built; individual
/// crash-point violations land in [`ShardedSweepReport::failures`].
pub fn sharded_crash_sweep(
    scratch: &Path,
    cfg: &ShardedSweepConfig,
) -> Result<ShardedSweepReport, String> {
    use lbs_runtime::{ShardedBuilder, ShardedConfig};

    let ref_dir = scratch.join("sharded-reference");
    let _ = std::fs::remove_dir_all(&ref_dir);

    let map = Rect::square(0, 0, side());
    let db0 = seeded_db(cfg.seed, cfg.users)?;
    let mut shard_cfg = ShardedConfig::new(cfg.k, map, cfg.shards);
    shard_cfg.checkpoint_every = cfg.checkpoint_every;
    let mut rt = ShardedBuilder::new(shard_cfg)
        .clock(Arc::new(ManualClock::new()))
        .create(&ref_dir, &db0)
        .map_err(|e| format!("create sharded reference: {e}"))?;
    let shards = rt.shard_count();

    // per_seq[i][s] = shard i's committed policy bytes once its records
    // 1..=s are durable and committed. Each round is pumped then drained,
    // so every reached sequence number has a committed policy.
    let mut per_seq: Vec<Vec<bytes::Bytes>> = Vec::with_capacity(shards);
    for i in 0..shards {
        let shard = rt.shard(i).ok_or_else(|| format!("shard {i} not up"))?;
        per_seq.push(vec![encode_policy(shard.committed_policy())]);
    }
    let mut present: Vec<UserId> = db0.users().collect();
    let mut next_id = cfg.users as u64;
    for round in 0..cfg.rounds {
        let batch = churn_batch(cfg.seed, round, &mut present, &mut next_id);
        rt.pump(&batch).map_err(|e| format!("round {round}: pump: {e}"))?;
        rt.drain().map_err(|e| format!("round {round}: drain: {e}"))?;
        for (i, seqs) in per_seq.iter_mut().enumerate() {
            let shard = rt.shard(i).ok_or_else(|| format!("round {round}: shard {i} not up"))?;
            let seq = shard.committed_seq() as usize;
            if seqs.len() == seq {
                seqs.push(encode_policy(shard.committed_policy()));
            } else if seqs.len() != seq + 1 {
                return Err(format!(
                    "round {round}: shard {i} jumped to seq {seq} with {} recorded",
                    seqs.len()
                ));
            }
        }
    }
    drop(rt);

    let mut report = ShardedSweepReport {
        config: *cfg,
        shards,
        points: 0,
        torn_checkpoint_points: 0,
        corrupt_checkpoint_points: 0,
        max_replay: 0,
        failures: Vec::new(),
    };

    for victim in 0..shards {
        let victim_dir = ref_dir.join(format!("shard-{victim:03}"));
        let wal_raw = std::fs::read(victim_dir.join(WAL_FILE))
            .map_err(|e| format!("read shard {victim} wal: {e}"))?;
        let (records, valid_len) = scan(&wal_raw);
        if valid_len != wal_raw.len() as u64 {
            return Err(format!("shard {victim} reference wal has an invalid tail"));
        }
        let checkpoints = list_checkpoints(&victim_dir)
            .map_err(|e| format!("list shard {victim} checkpoints: {e}"))?;

        let mut offsets: Vec<u64> = vec![0];
        let mut start = 0u64;
        for record in &records {
            let span = record.end_offset - start;
            for tear in [start + 1, start + span / 2, record.end_offset] {
                if !offsets.contains(&tear) {
                    offsets.push(tear);
                }
            }
            start = record.end_offset;
        }

        for (index, &offset) in offsets.iter().enumerate() {
            let mut variants = vec!["plain"];
            if index % 3 == 1 {
                variants.push("torn-tmp");
            }
            if index % 3 == 2 {
                variants.push("corrupt-newest");
            }
            for variant in variants {
                report.points += 1;
                match run_sharded_point(
                    scratch,
                    &ref_dir,
                    shard_cfg,
                    victim,
                    &wal_raw,
                    &records,
                    &checkpoints,
                    &per_seq,
                    offset,
                    variant,
                ) {
                    Ok(replayed) => {
                        report.max_replay = report.max_replay.max(replayed);
                        match variant {
                            "torn-tmp" => report.torn_checkpoint_points += 1,
                            "corrupt-newest" => report.corrupt_checkpoint_points += 1,
                            _ => {}
                        }
                    }
                    Err(message) => report
                        .failures
                        .push(format!("shard {victim} offset {offset} [{variant}]: {message}")),
                }
            }
        }
    }

    let _ = std::fs::remove_dir_all(&ref_dir);
    Ok(report)
}

/// Materializes one per-shard crash instant (whole sharded directory,
/// only `victim`'s artifacts damaged), recovers it, and checks both the
/// victim's prefix identity and every survivor's full identity.
#[allow(clippy::too_many_arguments)]
fn run_sharded_point(
    scratch: &Path,
    ref_dir: &Path,
    shard_cfg: lbs_runtime::ShardedConfig,
    victim: usize,
    wal_raw: &[u8],
    records: &[lbs_runtime::WalRecord],
    checkpoints: &[(u64, std::path::PathBuf)],
    per_seq: &[Vec<bytes::Bytes>],
    offset: u64,
    variant: &str,
) -> Result<usize, String> {
    let durable = records.iter().filter(|r| r.end_offset <= offset).count() as u64;
    let dir = scratch.join(format!("sharded-crash-{victim}-{offset}-{variant}"));
    let _ = std::fs::remove_dir_all(&dir);
    copy_tree(ref_dir, &dir)?;

    // Damage exactly the victim's directory: WAL sliced to the crash
    // instant, checkpoints newer than it removed, variant damage added.
    let victim_dir = dir.join(format!("shard-{victim:03}"));
    std::fs::write(victim_dir.join(WAL_FILE), &wal_raw[..offset as usize])
        .map_err(|e| format!("slice victim wal: {e}"))?;
    let mut kept: Vec<u64> = Vec::new();
    for (seq, path) in checkpoints {
        let name = path.file_name().ok_or("checkpoint without name")?;
        if *seq > durable {
            std::fs::remove_file(victim_dir.join(name))
                .map_err(|e| format!("drop future checkpoint: {e}"))?;
        } else {
            kept.push(*seq);
        }
    }
    kept.sort_unstable();
    match variant {
        "torn-tmp" => {
            std::fs::write(
                victim_dir.join(format!("checkpoint-{:012}.ckpt.tmp", durable + 1)),
                [0x5A; 41],
            )
            .map_err(|e| format!("write torn tmp: {e}"))?;
        }
        "corrupt-newest" if kept.len() >= 2 => {
            let newest = kept[kept.len() - 1];
            let path = victim_dir.join(format!("checkpoint-{newest:012}.ckpt"));
            let mut raw = std::fs::read(&path).map_err(|e| format!("read newest: {e}"))?;
            let mid = raw.len() / 2;
            raw[mid] ^= 0x10;
            std::fs::write(&path, &raw).map_err(|e| format!("corrupt newest: {e}"))?;
        }
        _ => {}
    }

    let (recovered, reports) = lbs_runtime::ShardedBuilder::new(shard_cfg)
        .clock(Arc::new(ManualClock::new()))
        .recover(&dir)
        .map_err(|e| format!("recover fleet: {e}"))?;
    let mut problems = Vec::new();
    for (shard, reference) in per_seq.iter().enumerate().take(recovered.shard_count()) {
        let rt = recovered.shard(shard).ok_or_else(|| format!("shard {shard} not up"))?;
        let actual = encode_policy(rt.committed_policy());
        let expected = if shard == victim {
            reference
                .get(durable as usize)
                .ok_or_else(|| format!("no reference at victim seq {durable}"))?
        } else {
            // Shared-nothing isolation: the survivor must land on its
            // full reference state, byte for byte, no matter what was
            // done to the victim.
            reference.last().ok_or("empty survivor reference")?
        };
        if actual != *expected {
            problems.push(format!(
                "shard {shard} NOT bit-identical ({} vs {} bytes){}",
                actual.len(),
                expected.len(),
                if shard == victim { "" } else { " — isolation violated" },
            ));
        }
        if shard == victim {
            // A torn migration (the victim's WAL lost a `Delete` whose
            // paired `Insert` survived on another shard) is repaired by
            // a reconciliation purge — one extra staged WAL record on
            // the purged shard, which may be the victim.
            let purged = recovered.reconciled_purges().get(shard).copied().unwrap_or(0);
            let expected_seq = durable + u64::from(purged > 0);
            if rt.durable_seq() != expected_seq {
                problems.push(format!(
                    "victim durable seq {} != {expected_seq} ({purged} purged)",
                    rt.durable_seq()
                ));
            }
        }
    }
    let replayed = reports.get(victim).map(|r| r.replayed).unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);
    if problems.is_empty() {
        Ok(replayed)
    } else {
        Err(problems.join("; "))
    }
}

/// What the degradation-ladder audit observed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Senders served on the `Committed` rung (cloak unchanged).
    pub committed: usize,
    /// Senders served on the `Coarsened` rung (ancestor cloak).
    pub coarsened: usize,
    /// Senders shed (rung 3).
    pub shed: usize,
    /// Oracle assertions that ran.
    pub oracle_checks: usize,
}

/// Audits every rung of the degradation ladder with the full oracle
/// stack under `seed`.
///
/// # Errors
/// The first violated oracle, with enough context to replay.
pub fn audit_degradation_ladder(
    seed: u64,
    users: usize,
    k: usize,
) -> Result<DegradationReport, String> {
    let map = Rect::square(0, 0, side());
    let mut db = seeded_db(seed, users)?;

    // Rung 0 (fresh): the committed optimal policy itself.
    let engine = Anonymizer::build(&db, map, k).map_err(|e| format!("build: {e}"))?;
    let committed = engine.policy().clone();
    verify_policy_aware(&committed, &db, k)
        .map_err(|v| format!("fresh rung: {} verify violations", v.len()))?;
    let breaches = audit_policy(&committed, &db, k);
    if !breaches.is_empty() {
        return Err(format!("fresh rung: attacker breached {} cloaks", breaches.len()));
    }
    let mut checks = 2;

    // Churn without recommitting, then derive the degraded policy the
    // ladder would serve from.
    let mut present: Vec<UserId> = db.users().collect();
    let mut next_id = users as u64;
    for round in 0..6 {
        let batch = churn_batch(seed ^ 0xDE64, round, &mut present, &mut next_id);
        db.apply_updates(&batch).map_err(|e| format!("churn: {e:?}"))?;
    }
    let degraded = lbs_runtime::degraded_policy(&committed, &db, &map, k);
    let served = degraded
        .served_db(&db)
        .ok_or("degraded policy serves nobody — cannot audit an empty population")?;

    // Rungs 1–2 face the same oracle stack, over the served population:
    // shed senders emit no request, so the attacker's candidate set for
    // each region is exactly the served senders assigned to it.
    verify_policy_aware(&degraded.policy, &served, k)
        .map_err(|v| format!("degraded rungs: {} verify violations", v.len()))?;
    let breaches = audit_policy(&degraded.policy, &served, k);
    if !breaches.is_empty() {
        return Err(format!(
            "degraded rungs: attacker breached {} cloaks (first: {} -> {:?})",
            breaches.len(),
            breaches[0].region,
            breaches[0].candidates
        ));
    }
    checks += 2;

    // Masking must hold against the *live* database too: every served
    // sender's current location is inside the cloak it was served.
    for (user, region) in degraded.policy.iter() {
        let point = db.location(user).ok_or_else(|| format!("{user} served but absent"))?;
        if !region.contains(&point) {
            return Err(format!("{user}: degraded cloak does not mask the live location"));
        }
    }
    checks += 1;

    // Rung 3: shed senders really are outside the served policy.
    for user in &degraded.shed {
        if degraded.policy.cloak_of(*user).is_some() {
            return Err(format!("{user} both shed and served"));
        }
    }
    checks += 1;

    let committed_count = degraded.rungs.values().filter(|r| **r == Rung::Committed).count();
    let coarsened_count = degraded.rungs.values().filter(|r| **r == Rung::Coarsened).count();
    Ok(DegradationReport {
        committed: committed_count,
        coarsened: coarsened_count,
        shed: degraded.shed.len(),
        oracle_checks: checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lbs-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn default_sweep_covers_fifty_points_bit_identically() {
        let dir = scratch("default");
        let report = crash_sweep(&dir, &CrashSweepConfig::default()).unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(report.points >= 50, "only {} crash points", report.points);
        assert!(report.boundary_points >= 10, "{report}");
        assert!(report.mid_record_points >= 30, "{report}");
        assert!(report.torn_checkpoint_points >= 5, "{report}");
        assert!(report.corrupt_checkpoint_points >= 3, "{report}");
        assert!(report.max_replay >= 1, "some crash point must exercise replay");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_sweep_keeps_survivor_shards_bit_identical() {
        let dir = scratch("sharded");
        let report = sharded_crash_sweep(&dir, &ShardedSweepConfig::default()).unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(report.shards >= 2, "plan collapsed to one shard: {report}");
        assert!(report.points >= 40, "only {} crash points", report.points);
        assert!(report.torn_checkpoint_points >= 4, "{report}");
        assert!(report.corrupt_checkpoint_points >= 2, "{report}");
        assert!(report.max_replay >= 1, "some point must exercise per-shard replay");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degradation_ladder_survives_the_attacker_on_every_rung() {
        let mut saw_coarsened = false;
        let mut saw_shed = false;
        for seed in [3u64, 11, 42] {
            let report = audit_degradation_ladder(seed, 56, 4).unwrap();
            assert!(report.committed + report.coarsened >= 4, "seed {seed}: {report:?}");
            saw_coarsened |= report.coarsened > 0;
            saw_shed |= report.shed > 0;
        }
        assert!(saw_coarsened, "no seed exercised the coarsened rung");
        assert!(saw_shed, "no seed exercised the shed rung");
    }
}
