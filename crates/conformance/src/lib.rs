//! Attacker-in-the-loop conformance subsystem.
//!
//! Three layers of oracle, in increasing strength and decreasing scale:
//!
//! 1. **Structural verification** — `lbs_core::verify_policy_aware` plus
//!    the PRE-enumerating attacker's `audit_policy`, applied to *every*
//!    scenario instance. Policy-aware algorithms must be clean; the
//!    policy-unaware baselines must reproduce the paper's Example-1
//!    style breach at least once per sweep.
//! 2. **Optimality oracle** — on tiny instances the brute-force
//!    `brute_force_optimal_cost` must agree with the DP, and the literal
//!    Definition-6 check `literal_k_anonymity` must hold at `k` and fail
//!    at `|D| + 1`.
//! 3. **Golden corpus** — frozen JSON records
//!    ([`golden::GoldenRecord`]) pin exact costs and assignment
//!    fingerprints for a fixed sub-matrix; intentional changes are
//!    re-blessed via the CLI and reviewed as a diff.
//! 4. **Crash-recovery sweep** ([`recovery`]) — kill-and-recover the
//!    service runtime at every WAL crash point and prove the recovered
//!    policy bit-identical; audit every degradation-ladder rung with
//!    the policy-aware attacker.
//! 5. **Sharded soak** ([`soak`]) — seeded sustained traffic through the
//!    sharded epoch-pipelined service with mid-traffic shard crashes:
//!    no global stall, no attacker breach, aggregate cost within the
//!    paper's divergence bound of the single-shard optimum.
//! 6. **Storage-fault sweep** ([`storage_fault`]) — deterministic disk
//!    faults (short writes, fsync failures, ENOSPC, bit-rot, rename
//!    failures, crash points) driven through the runtime's storage
//!    backend, with crash-restart lives, scrub/GC self-healing, and
//!    per-shard victims: every point recovers bit-identically or fails
//!    loudly with a typed error naming the corrupt artifact.
//!
//! The whole subsystem is driven by one master seed
//! ([`DEFAULT_MASTER_SEED`]); every failure message carries the
//! per-scenario derived seed so a red run replays directly with
//! `lbs conformance --seed <seed>` or a targeted unit test.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod golden;
pub mod harness;
pub mod recovery;
pub mod scenario;
pub mod soak;
pub mod storage_fault;

pub use golden::{
    bless, bless_sharded, check, check_sharded, compute_corpus, compute_sharded_corpus,
    policy_fingerprint, GoldenRecord, ShardedGoldenRecord,
};
pub use harness::{run_matrix, run_scenario, ConformanceReport, ScenarioOutcome};
pub use recovery::{
    audit_degradation_ladder, crash_sweep, sharded_crash_sweep, CrashSweepConfig, CrashSweepReport,
    DegradationReport, ShardedSweepConfig, ShardedSweepReport,
};
pub use scenario::{scenario_matrix, Algorithm, Density, Scenario, Tier, DEFAULT_MASTER_SEED};
pub use soak::{soak, SoakConfig, SoakCrash, SoakReport};
pub use storage_fault::{storage_fault_sweep, StorageFaultConfig, StorageFaultReport};
