//! Snapshot-format and runner-determinism tests for the `lbs bench`
//! suite: serde round-trips, stable case ordering, same-seed
//! reproducibility, and the regression gate's threshold behavior.

use lbs_bench::snapshot::{compare, BenchSnapshot, CaseRecord, SCHEMA_VERSION};
use lbs_bench::suite::{case_names, run_suite, Tier};
use std::collections::BTreeMap;

fn synthetic(cal: u64, cases: &[(&str, u64)]) -> BenchSnapshot {
    BenchSnapshot {
        schema: SCHEMA_VERSION,
        seed: 99,
        git_rev: "cafebabe".into(),
        host_calibration_ns: cal,
        cases: cases
            .iter()
            .map(|&(name, ns)| {
                (name.to_string(), CaseRecord { median_ns: ns, p95_ns: ns + ns / 10, iters: 5 })
            })
            .collect(),
    }
}

#[test]
fn snapshot_json_round_trips_exactly() {
    let snap = synthetic(12_345, &[("bulk_dp/n100000/k10", 1_000_000), ("query/hit", 5_000)]);
    let json = snap.to_json();
    let back = BenchSnapshot::from_json(&json).expect("round-trip parses");
    assert_eq!(back, snap);
    // And the re-serialization is byte-identical — committed snapshots
    // never churn from a parse/emit cycle.
    assert_eq!(back.to_json(), json);
}

#[test]
fn case_order_in_json_is_sorted_and_insertion_independent() {
    // Same cases inserted in opposite orders serialize identically: the
    // BTreeMap, not insertion history, owns the order.
    let a = synthetic(1, &[("z/case", 10), ("a/case", 20), ("m/case", 30)]);
    let b = synthetic(1, &[("m/case", 30), ("a/case", 20), ("z/case", 10)]);
    assert_eq!(a.to_json(), b.to_json());
    let keys: Vec<&String> = a.cases.keys().collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn tier_case_lists_are_deterministic() {
    assert_eq!(case_names(Tier::Smoke), case_names(Tier::Smoke));
    assert_eq!(case_names(Tier::Full), case_names(Tier::Full));
    assert!(!case_names(Tier::Smoke).is_empty());
    // The paper-scale grid is present by name.
    let full = case_names(Tier::Full);
    for expected in [
        "bulk_dp/n100000/k10",
        "bulk_dp/n100000/k50",
        "bulk_dp/n1000000/k10",
        "bulk_dp/n1000000/k50",
        "bulk_dp/n1750000/k10",
        "bulk_dp/n1750000/k50",
        "incremental_commit/n100000",
        "engine_scaling/n250000/w1",
        "engine_scaling/n250000/w2",
        "engine_scaling/n250000/w4",
        "engine_scaling/n250000/w8",
        "query_cache/n100000/hit_path",
    ] {
        assert!(full.iter().any(|n| n == expected), "{expected} missing from full tier");
    }
}

#[test]
fn same_seed_runs_produce_identical_case_lists_and_iteration_counts() {
    let mut sink = Vec::new();
    let first = run_suite(Tier::Smoke, 7, 1, "r".into(), &mut sink);
    let second = run_suite(Tier::Smoke, 7, 1, "r".into(), &mut sink);
    assert_eq!(first.seed, second.seed);
    let keys = |s: &BenchSnapshot| s.cases.keys().cloned().collect::<Vec<_>>();
    assert_eq!(keys(&first), keys(&second));
    let iters = |s: &BenchSnapshot| {
        s.cases.iter().map(|(k, r)| (k.clone(), r.iters)).collect::<BTreeMap<_, _>>()
    };
    assert_eq!(iters(&first), iters(&second));
    // And the key set is exactly the advertised case list.
    let mut advertised = case_names(Tier::Smoke);
    advertised.sort();
    assert_eq!(keys(&first), advertised);
}

#[test]
fn compare_flags_25_percent_slowdown_but_not_5_percent() {
    let old = synthetic(1_000, &[("a", 100_000), ("b", 200_000)]);

    // 5% slower on one case: inside the 20% budget.
    let mild = synthetic(1_000, &[("a", 105_000), ("b", 200_000)]);
    let report = compare(&old, &mild, 20.0);
    assert!(report.passed(), "5% must not trip a 20% gate");
    assert!(report.regressions().is_empty());

    // 25% slower on one case: beyond the budget, and attributed to it.
    let bad = synthetic(1_000, &[("a", 125_000), ("b", 200_000)]);
    let report = compare(&old, &bad, 20.0);
    assert!(!report.passed(), "25% must trip a 20% gate");
    let regressions = report.regressions();
    assert_eq!(regressions.len(), 1);
    assert_eq!(regressions[0].name, "a");
    assert!((regressions[0].ratio - 1.25).abs() < 1e-9);
    assert!(report.render().contains("REGRESSED"));
}

#[test]
fn compare_normalizes_by_host_calibration() {
    let old = synthetic(1_000, &[("a", 100_000)]);
    // Raw 30% slowdown on a host whose calibration also grew 30%: the
    // machine got slower, the code did not.
    let new = synthetic(1_300, &[("a", 130_000)]);
    assert!(compare(&old, &new, 20.0).passed());
    // Raw parity on a host that got 30% faster: a real 30% regression.
    let hidden = synthetic(769, &[("a", 100_000)]);
    assert!(!compare(&old, &hidden, 20.0).passed());
}
