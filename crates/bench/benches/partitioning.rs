//! Section V / VI-D microbenchmark: greedy jurisdiction partitioning and
//! multi-server bulk anonymization. More servers shrink the slowest
//! server's share near-linearly while total cost stays within 1% of the
//! single-server optimum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbs_bench::MasterWorkload;
use lbs_parallel::{anonymize_partitioned, greedy_partition};
use lbs_tree::{SpatialTree, TreeConfig, TreeKind};

fn partitioning(c: &mut Criterion) {
    let workload = MasterWorkload::generate(true);
    let map = workload.config().map();
    let db = workload.sample(100_000);
    let k = 50;

    let tree = SpatialTree::build(&db, TreeConfig::lazy(TreeKind::Binary, map, k)).unwrap();
    let mut group = c.benchmark_group("greedy_partition_100k");
    for servers in [16usize, 256, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(servers), &servers, |b, &s| {
            b.iter(|| greedy_partition(&tree, s, k).len())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("partitioned_anonymize_100k");
    group.sample_size(10);
    for servers in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(servers), &servers, |b, &s| {
            b.iter(|| anonymize_partitioned(&db, map, k, s).unwrap().total_cost)
        });
    }
    group.finish();
}

criterion_group!(benches, partitioning);
criterion_main!(benches);
