//! Figure 5(a) microbenchmark: policy construction cost for the four
//! compared algorithms (Casper, PUB, PUQ, optimal policy-aware) on the
//! same snapshot — both wall time and resulting average cloak area (the
//! area comparison itself is printed by `experiments fig5a`).

use criterion::{criterion_group, criterion_main, Criterion};
use lbs_baselines::{Casper, PolicyUnawareBinary, PolicyUnawareQuad};
use lbs_bench::MasterWorkload;
use lbs_core::Anonymizer;
use lbs_model::CloakingPolicy;

fn policies(c: &mut Criterion) {
    let workload = MasterWorkload::generate(true);
    let map = workload.config().map();
    let db = workload.sample(25_000);
    let k = 50;

    let mut group = c.benchmark_group("policy_construction_25k");
    group.sample_size(10);
    group.bench_function("casper", |b| {
        b.iter(|| Casper::build(&db, map, k).unwrap().materialize(&db).cost_exact())
    });
    group.bench_function("puq", |b| {
        b.iter(|| PolicyUnawareQuad::build(&db, map, k).unwrap().materialize(&db).cost_exact())
    });
    group.bench_function("pub", |b| {
        b.iter(|| PolicyUnawareBinary::build(&db, map, k).unwrap().materialize(&db).cost_exact())
    });
    group.bench_function("policy_aware_optimal", |b| {
        b.iter(|| Anonymizer::build(&db, map, k).unwrap().cost())
    });
    group.finish();
}

criterion_group!(benches, policies);
criterion_main!(benches);
