//! Section VII microbenchmark: per-request cloak lookup against a built
//! policy. The paper reports 0.3–0.5 ms per lookup on 2005-era hardware
//! and argues this beats cryptographic PIR by three orders of magnitude;
//! a hash-map policy lookup is sub-microsecond here.

use criterion::{criterion_group, criterion_main, Criterion};
use lbs_bench::MasterWorkload;
use lbs_core::Anonymizer;
use lbs_model::{CloakingPolicy, RequestId, RequestParams, ServiceRequest, UserId};

fn lookup(c: &mut Criterion) {
    let workload = MasterWorkload::generate(true);
    let db = workload.sample(100_000);
    let engine = Anonymizer::build(&db, workload.config().map(), 50).unwrap();
    let users: Vec<UserId> = db.users().collect();

    let mut i = 0usize;
    c.bench_function("cloak_lookup_100k", |b| {
        b.iter(|| {
            i = (i + 1) % users.len();
            engine.policy().cloak_of(users[i]).copied()
        })
    });

    // Full anonymized-request construction (lookup + params copy + rid).
    let params = RequestParams::from_pairs([("poi", "rest"), ("cat", "ital")]);
    let mut j = 0usize;
    c.bench_function("anonymize_request_100k", |b| {
        b.iter(|| {
            j = (j + 1) % users.len();
            let user = users[j];
            let sr = ServiceRequest::new(user, db.location(user).unwrap(), params.clone());
            engine.policy().anonymize(&db, &sr, RequestId(j as u64)).expect("valid request")
        })
    });
}

criterion_group!(benches, lookup);
criterion_main!(benches);
