//! Figure 5(b) microbenchmark: incremental maintenance of the optimum
//! configuration matrix vs bulk recomputation, as the mover fraction
//! grows. The paper's crossover sits near 5% movers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbs_bench::MasterWorkload;
use lbs_core::{Anonymizer, IncrementalAnonymizer};
use lbs_tree::{TreeConfig, TreeKind};
use lbs_workload::random_moves;

fn incremental_vs_bulk(c: &mut Criterion) {
    let workload = MasterWorkload::generate(true);
    let map = workload.config().map();
    let db = workload.sample(50_000);
    let k = 50;
    let config = TreeConfig::lazy(TreeKind::Binary, map, k);

    let mut group = c.benchmark_group("maintenance_50k");
    group.sample_size(10);
    for pct in [0.5f64, 2.0, 5.0, 10.0] {
        let moves = random_moves(&db, &map, pct / 100.0, 200.0, pct as u64 + 1);
        group.bench_with_input(
            BenchmarkId::new("incremental", format!("{pct}pct")),
            &moves,
            |b, moves| {
                // Setup (building the engine) excluded via iter_batched.
                b.iter_batched(
                    || IncrementalAnonymizer::new(&db, config, k).unwrap(),
                    |mut engine| engine.apply_moves(moves).unwrap().rows_recomputed,
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bulk_rebuild", format!("{pct}pct")),
            &moves,
            |b, moves| {
                let mut moved = db.clone();
                moved.apply_moves(moves).unwrap();
                b.iter(|| Anonymizer::build(&moved, map, k).unwrap().cost())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, incremental_vs_bulk);
criterion_main!(benches);
