//! Figure 4(a)/4(b) microbenchmark: bulk anonymization time as |D| and k
//! scale. The full paper-scale sweep lives in the `experiments` binary;
//! Criterion here gives statistically sound per-configuration timings at
//! sizes that keep a full `cargo bench` run tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbs_bench::MasterWorkload;
use lbs_core::Anonymizer;

fn bulk_vs_d(c: &mut Criterion) {
    let workload = MasterWorkload::generate(true);
    let map = workload.config().map();
    let mut group = c.benchmark_group("bulk_anonymize_vs_D");
    group.sample_size(10);
    for n in [10_000usize, 25_000, 50_000, 100_000] {
        let db = workload.sample(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| Anonymizer::build(db, map, 50).unwrap().cost())
        });
    }
    group.finish();
}

fn bulk_vs_k(c: &mut Criterion) {
    let workload = MasterWorkload::generate(true);
    let map = workload.config().map();
    let db = workload.sample(50_000);
    let mut group = c.benchmark_group("bulk_anonymize_vs_k");
    group.sample_size(10);
    for k in [10usize, 25, 50, 100, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| Anonymizer::build(&db, map, k).unwrap().cost())
        });
    }
    group.finish();
}

criterion_group!(benches, bulk_vs_d, bulk_vs_k);
criterion_main!(benches);
