//! Ablation microbenchmarks over the design choices DESIGN.md calls out:
//! the Lemma-5 pass-up bound, lazy vs eager materialization, and the
//! semi-quadrant orientation policy. Costs are asserted identical where
//! the theory demands it (Lemma 5 never changes the optimum).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbs_bench::MasterWorkload;
use lbs_core::{bulk_dp_fast, bulk_dp_fast_with_options};
use lbs_tree::{Orientation, SpatialTree, TreeConfig, TreeKind};

fn lemma5_bound(c: &mut Criterion) {
    let workload = MasterWorkload::generate(true);
    let map = workload.config().map();
    let k = 50;
    let mut group = c.benchmark_group("lemma5_bound");
    group.sample_size(10);
    for n in [10_000usize, 25_000] {
        let db = workload.sample(n);
        let tree = SpatialTree::build(&db, TreeConfig::lazy(TreeKind::Binary, map, k)).unwrap();
        // Sanity once per size: identical optimum.
        let with = bulk_dp_fast_with_options(&tree, k, true).unwrap().optimal_cost(&tree).ok();
        let without = bulk_dp_fast_with_options(&tree, k, false).unwrap().optimal_cost(&tree).ok();
        assert_eq!(with, without, "Lemma 5 must not change the optimum");

        group.bench_with_input(BenchmarkId::new("with", n), &tree, |b, tree| {
            b.iter(|| bulk_dp_fast_with_options(tree, k, true).unwrap().computed_rows())
        });
        group.bench_with_input(BenchmarkId::new("without", n), &tree, |b, tree| {
            b.iter(|| bulk_dp_fast_with_options(tree, k, false).unwrap().computed_rows())
        });
    }
    group.finish();
}

fn materialization(c: &mut Criterion) {
    let workload = MasterWorkload::generate(true);
    let map = workload.config().map();
    let k = 50;
    let db = workload.sample(50_000);
    let mut group = c.benchmark_group("materialization_50k");
    group.sample_size(10);
    for (name, cfg) in [
        ("lazy", TreeConfig::lazy(TreeKind::Binary, map, k)),
        ("eager_d14", TreeConfig::eager(TreeKind::Binary, map, 14)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let tree = SpatialTree::build(&db, cfg).unwrap();
                bulk_dp_fast(&tree, k).unwrap().optimal_cost(&tree).unwrap()
            })
        });
    }
    group.finish();
}

fn orientation(c: &mut Criterion) {
    let workload = MasterWorkload::generate(true);
    let map = workload.config().map();
    let k = 50;
    let db = workload.sample(50_000);
    let mut group = c.benchmark_group("orientation_50k");
    group.sample_size(10);
    for (name, orientation) in
        [("fixed_vertical", Orientation::FixedVertical), ("balanced", Orientation::Balanced)]
    {
        let cfg = TreeConfig::lazy(TreeKind::Binary, map, k).with_orientation(orientation);
        group.bench_function(name, |b| {
            b.iter(|| {
                let tree = SpatialTree::build(&db, cfg).unwrap();
                bulk_dp_fast(&tree, k).unwrap().optimal_cost(&tree).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, lemma5_bound, materialization, orientation);
criterion_main!(benches);
