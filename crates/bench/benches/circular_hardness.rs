//! Theorem 1 ablation: optimal policy-aware anonymization with circular
//! cloaks is NP-complete — the exact set-partition solver's running time
//! explodes with |D| while the greedy heuristic stays polynomial. This is
//! the executable counterpart of the paper's hardness result, motivating
//! the quad-tree restriction that makes Theorem 2's PTIME algorithm
//! possible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbs_baselines::{greedy_circular_policy, optimal_circular_policy};
use lbs_geom::Point;
use lbs_model::{LocationDb, UserId};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn instance(n: usize, seed: u64) -> (LocationDb, Vec<Point>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let db =
        LocationDb::from_rows((0..n).map(|i| {
            (UserId(i as u64), Point::new(rng.gen_range(0..1_000), rng.gen_range(0..1_000)))
        }))
        .unwrap();
    let centers =
        (0..4).map(|_| Point::new(rng.gen_range(0..1_000), rng.gen_range(0..1_000))).collect();
    (db, centers)
}

fn hardness(c: &mut Criterion) {
    let mut group = c.benchmark_group("circular_thm1");
    group.sample_size(10);
    for n in [6usize, 8, 10, 12] {
        let (db, centers) = instance(n, 42);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| optimal_circular_policy(&db, &centers, 2).unwrap().cost)
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| greedy_circular_policy(&db, &centers, 2).unwrap().cost)
        });
    }
    group.finish();
}

criterion_group!(benches, hardness);
criterion_main!(benches);
