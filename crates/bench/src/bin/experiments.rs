//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section VI) plus the worked examples and the Theorem-1
//! hardness ablation.
//!
//! ```text
//! cargo run --release -p lbs-bench --bin experiments -- <experiment> [--quick]
//!
//! experiments:
//!   table1   Table I / Examples 1-8: the worked 5-user instance
//!   fig2     population density grid of the synthetic Bay Area
//!   fig3     tree structure on the 1M sample, k=50
//!   fig4a    bulk anonymization time vs |D| and #servers, k=50
//!   fig4b    bulk anonymization time vs k, |D|=1M
//!   fig5a    average cloak area: Casper vs PUB vs PUQ vs policy-aware
//!   fig5b    incremental maintenance vs bulk recomputation, 1M, k=50
//!   vid      Section VI-D: cost divergence vs #jurisdictions
//!   lookup   Section VII: per-request cloak lookup latency
//!   thm1     Theorem 1: exact vs greedy circular anonymization
//!   query    extension: cloaked-NN candidate sets vs k (utility, §IV/§VII)
//!   ablation extension: Lemma-5 bound, tree materialization, trajectory defence
//!   engine   extension: work-stealing pool vs sequential servers, with metrics
//!   all      everything above
//! ```
//!
//! `--quick` runs the same sweeps on a 100k-user master for smoke testing.
//! `--metrics-json PATH` dumps the run's accumulated `MetricsSnapshot`
//! (counters + stage timers) as JSON; the `engine` experiment populates it
//! most densely.

use lbs_attack::{audit_policy, PolicyAwareAttacker, PolicyUnawareAttacker};
use lbs_baselines::{
    greedy_circular_policy, optimal_circular_policy, Casper, PolicyUnawareBinary, PolicyUnawareQuad,
};
use lbs_bench::{secs, timed, MasterWorkload, Table};
use lbs_core::{verify_policy_aware, Anonymizer, IncrementalAnonymizer};
use lbs_geom::{Point, Rect, Region};
use lbs_metrics::{median_p95_ns, Counter, Metrics, Stage};
use lbs_model::{CloakingPolicy, LocationDb, UserId};
use lbs_parallel::{anonymize_partitioned, anonymize_work_stealing, EngineConfig};
use lbs_tree::{leaf_csv, SpatialTree, TreeConfig, TreeKind, TreeStats};
use lbs_workload::{density_grid, random_moves};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let metrics_json = match args.iter().position(|a| a == "--metrics-json") {
        Some(pos) if pos + 1 < args.len() => {
            let path = args.remove(pos + 1);
            args.remove(pos);
            Some(path)
        }
        Some(_) => {
            eprintln!("--metrics-json requires a path");
            std::process::exit(2);
        }
        None => None,
    };
    let seed = match args.iter().position(|a| a == "--seed") {
        Some(pos) if pos + 1 < args.len() => {
            let value = args.remove(pos + 1);
            args.remove(pos);
            match value.parse::<u64>() {
                Ok(seed) => Some(seed),
                Err(_) => {
                    eprintln!("--seed requires an unsigned integer, got {value:?}");
                    std::process::exit(2);
                }
            }
        }
        Some(_) => {
            eprintln!("--seed requires a value");
            std::process::exit(2);
        }
        None => None,
    };
    let which = args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_default();
    let known = [
        "table1", "fig2", "fig3", "fig4a", "fig4b", "fig5a", "fig5b", "vid", "lookup", "thm1",
        "query", "ablation", "engine", "all",
    ];
    if !known.contains(&which.as_str()) {
        eprintln!(
            "usage: experiments <{}> [--quick] [--seed N] [--metrics-json PATH]",
            known.join("|")
        );
        std::process::exit(2);
    }

    let metrics = Metrics::new();
    run_experiments(&which, quick, seed, &metrics);

    if let Some(path) = metrics_json {
        let json =
            serde_json::to_string_pretty(&metrics.snapshot()).expect("metrics snapshot serializes");
        std::fs::write(&path, json).expect("write metrics json");
        eprintln!("metrics snapshot -> {path}");
    }
}

fn run_experiments(which: &str, quick: bool, seed: Option<u64>, metrics: &Metrics) {
    // table1 and thm1 need no master workload.
    if which == "table1" {
        return table1();
    }
    if which == "thm1" {
        return thm1();
    }

    eprintln!("generating master workload (quick={quick})…");
    let (workload, gen_time) = timed(|| match seed {
        Some(seed) => MasterWorkload::generate_seeded(quick, seed),
        None => MasterWorkload::generate(quick),
    });
    eprintln!(
        "master: {} users in {}s (seed {}; pass --seed {} to replay)",
        workload.master().len(),
        secs(gen_time),
        workload.config().seed,
        workload.config().seed,
    );

    match which {
        "fig2" => fig2(&workload),
        "fig3" => fig3(&workload),
        "fig4a" => fig4a(&workload),
        "fig4b" => fig4b(&workload),
        "fig5a" => fig5a(&workload),
        "fig5b" => fig5b(&workload),
        "vid" => vid(&workload),
        "lookup" => lookup(&workload),
        "query" => query_utility(&workload),
        "ablation" => ablation(&workload),
        "engine" => engine(&workload, metrics),
        "all" => {
            table1();
            fig2(&workload);
            fig3(&workload);
            fig4a(&workload);
            fig4b(&workload);
            fig5a(&workload);
            fig5b(&workload);
            vid(&workload);
            lookup(&workload);
            thm1();
            query_utility(&workload);
            ablation(&workload);
            engine(&workload, metrics);
        }
        _ => unreachable!("validated above"),
    }
}

/// Table I / Figure 1 / Examples 1–8: the five-user worked instance.
fn table1() {
    println!("== table1: the paper's worked example (Table I, Examples 1-8) ==\n");
    // Half-open adaptation of Table I: A, B tight in the SW corner, C alone
    // in NW, S and T in the east.
    let db = LocationDb::from_rows([
        (UserId(0), Point::new(0, 0)), // Alice
        (UserId(1), Point::new(0, 1)), // Bob
        (UserId(2), Point::new(0, 3)), // Carol
        (UserId(3), Point::new(2, 0)), // Sam
        (UserId(4), Point::new(3, 3)), // Tom
    ])
    .unwrap();
    let names = ["Alice", "Bob", "Carol", "Sam", "Tom"];
    let map = Rect::square(0, 0, 4);
    let k = 2;

    println!("-- the 2-inside policy (Casper prototype) --");
    let casper = Casper::build(&db, map, k).unwrap().materialize(&db);
    let mut t = Table::new(&["user", "cloak", "users inside", "policy-aware candidates"]);
    let unaware = PolicyUnawareAttacker::new();
    let aware = PolicyAwareAttacker::new(casper.clone());
    for (i, user) in db.users().enumerate() {
        let cloak: Region = *casper.cloak_of(user).unwrap();
        t.row(vec![
            names[i].into(),
            cloak.to_string(),
            unaware.possible_senders_of_region(&db, &cloak).len().to_string(),
            aware.possible_senders_of_region(&db, &cloak).len().to_string(),
        ]);
    }
    println!("{}", t.render());
    let breaches = audit_policy(&casper, &db, k);
    for b in &breaches {
        let who: Vec<&str> = b.candidates.iter().map(|u| names[u.0 as usize]).collect();
        println!(
            "BREACH (Example 1): cloak {} identifies {} to a policy-aware attacker!",
            b.region,
            who.join(", ")
        );
    }
    assert!(!breaches.is_empty(), "the k-inside policy must exhibit the Example 1 breach");

    println!("\n-- optimal policy-aware 2-anonymous policy (Bulk_dp) --");
    let engine = Anonymizer::build(&db, map, k).unwrap();
    let policy = engine.policy();
    let mut t = Table::new(&["user", "cloak", "group size"]);
    let groups = policy.groups();
    for (i, user) in db.users().enumerate() {
        let cloak = policy.cloak_of(user).unwrap();
        t.row(vec![names[i].into(), cloak.to_string(), groups[cloak].len().to_string()]);
    }
    println!("{}", t.render());
    assert!(verify_policy_aware(policy, &db, k).is_ok());
    assert!(audit_policy(policy, &db, k).is_empty());
    println!(
        "optimal policy-aware cost = {} m^2 (2-inside cost = {} m^2): no breach, \
         utility traded for the stronger guarantee.\n",
        engine.cost(),
        casper.cost_exact().unwrap(),
    );
}

/// Figure 2: population density of the synthetic Bay Area.
fn fig2(w: &MasterWorkload) {
    println!("== fig2: population density (synthetic Bay Area master set) ==\n");
    let cells = 24;
    let grid = density_grid(w.master(), &w.config().map(), cells);
    let max = grid.iter().flatten().copied().max().unwrap_or(1).max(1);
    println!(
        "{} users over a {} m square; {cells}x{cells} grid, peak cell = {max} users",
        w.master().len(),
        w.config().map_side
    );
    println!("(ASCII shade: ' ' empty, '.' <1% of peak, ':' <5%, '+' <20%, '#' <60%, '@' rest)\n");
    for row in grid.iter().rev() {
        let line: String = row
            .iter()
            .map(|&c| {
                let f = c as f64 / max as f64;
                if c == 0 {
                    ' '
                } else if f < 0.01 {
                    '.'
                } else if f < 0.05 {
                    ':'
                } else if f < 0.20 {
                    '+'
                } else if f < 0.60 {
                    '#'
                } else {
                    '@'
                }
            })
            .collect();
        println!("  |{line}|");
    }
    println!("\ncsv (row-major, south row first):");
    for row in &grid {
        println!("{}", row.iter().map(usize::to_string).collect::<Vec<_>>().join(","));
    }
    println!();
}

/// Figure 3: shape of the (lazily materialized) binary tree on 1M users.
fn fig3(w: &MasterWorkload) {
    println!("== fig3: tree structure built on the 1M sample, k=50 ==\n");
    let k = 50;
    for n in [w.scale(1_000_000), w.scale(1_750_000)] {
        let db = w.sample(n);
        let (tree, t) = timed(|| {
            SpatialTree::build(&db, TreeConfig::lazy(TreeKind::Binary, w.config().map(), k))
                .unwrap()
        });
        let stats = TreeStats::compute(&tree);
        println!("|D| = {n} (built in {}s)", secs(t));
        println!("{stats}");
        println!(
            "paper's observations: max height <= 20 at 1M, < 25 at 1.75M; no leaf over k=50 \
             users.\nmeasured: max depth = {}, max leaf = {}\n",
            stats.max_depth, stats.max_leaf_count
        );
        let csv = leaf_csv(&tree);
        println!("(leaf rect CSV available: {} rows; first 3:)", csv.lines().count() - 1);
        for line in csv.lines().take(4) {
            println!("  {line}");
        }
        println!();
    }
}

/// Figure 4(a): bulk anonymization time vs |D|, one column per #servers.
///
/// Each cell is the median of [`FIG4A_REPEATS`] back-to-back runs — the
/// same aggregation the `lbs bench` snapshot suite uses — so a single
/// noisy run on a shared VM cannot distort the table.
const FIG4A_REPEATS: usize = 3;

fn fig4a(w: &MasterWorkload) {
    println!("== fig4a: bulk anonymization time (s) vs |D|, k=50 ==\n");
    let k = 50;
    let sizes = [100_000, 250_000, 500_000, 1_000_000, 1_750_000];
    let servers = [1usize, 2, 4, 8, 16, 32];
    let mut t = Table::new(&["|D|", "1", "2", "4", "8", "16", "32"]);
    for paper_n in sizes {
        let n = w.scale(paper_n);
        let db = w.sample(n);
        let mut cells = vec![n.to_string()];
        for &s in &servers {
            let samples: Vec<u64> = (0..FIG4A_REPEATS)
                .map(|_| {
                    let (outcome, _) = timed(|| anonymize_partitioned(&db, w.config().map(), k, s));
                    let outcome = outcome.expect("partitioned anonymization");
                    outcome.simulated_wall_time().as_nanos() as u64
                })
                .collect();
            let (median, _) = median_p95_ns(&samples);
            cells.push(format!("{:.3}", median as f64 / 1e9));
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "(simulated parallel wall time = partitioning + slowest server; servers share \
         nothing, see DESIGN.md §5; each cell = median of {FIG4A_REPEATS} runs)\n"
    );
}

/// Figure 4(b): bulk anonymization time vs k at |D| = 1M.
fn fig4b(w: &MasterWorkload) {
    println!("== fig4b: bulk anonymization time vs k, |D| = 1M ==\n");
    let n = w.scale(1_000_000);
    let db = w.sample(n);
    let mut t = Table::new(&["k", "time(s)", "cost(km^2 total)"]);
    for k in [10, 25, 50, 100, 150, 200, 250] {
        let (engine, elapsed) = timed(|| Anonymizer::build(&db, w.config().map(), k).unwrap());
        t.row(vec![k.to_string(), secs(elapsed), format!("{:.1}", engine.cost() as f64 / 1e6)]);
    }
    println!("{}", t.render());
    println!("(paper: quasi-linear — really sub-linear — growth in k)\n");
}

/// Figure 5(a): average cloak area of Casper / PUB / PUQ / policy-aware.
fn fig5a(w: &MasterWorkload) {
    println!("== fig5a: average cloak area (m^2) per policy, k=50 ==\n");
    let k = 50;
    let sizes = [100_000, 250_000, 500_000, 1_000_000];
    let map = w.config().map();
    let mut t = Table::new(&[
        "|D|",
        "casper",
        "PUB",
        "PUQ",
        "PA-binary",
        "PA-quad",
        "PAb/casper",
        "PAq/PUQ",
    ]);
    for paper_n in sizes {
        let n = w.scale(paper_n);
        let db = w.sample(n);
        let casper = Casper::build(&db, map, k).unwrap().materialize(&db);
        let pub_ = PolicyUnawareBinary::build(&db, map, k).unwrap().materialize(&db);
        let puq = PolicyUnawareQuad::build(&db, map, k).unwrap().materialize(&db);
        let pa = Anonymizer::build(&db, map, k).unwrap();
        // The quad-restricted policy-aware optimum: the setting of the
        // paper's remark "nearly identical to the policy-unaware
        // quad-tree".
        let pa_quad =
            Anonymizer::build_with_config(&db, TreeConfig::lazy(TreeKind::Quad, map, k), k)
                .unwrap();
        let (c, b, q, p, pq) = (
            casper.avg_area_f64(),
            pub_.avg_area_f64(),
            puq.avg_area_f64(),
            pa.avg_cloak_area(),
            pa_quad.avg_cloak_area(),
        );
        t.row(vec![
            n.to_string(),
            format!("{c:.0}"),
            format!("{b:.0}"),
            format!("{q:.0}"),
            format!("{p:.0}"),
            format!("{pq:.0}"),
            format!("{:.2}", p / c),
            format!("{:.2}", pq / q),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(paper: Casper cheapest; policy-aware ~= PUQ — compare PA-quad vs PUQ — and at \
         most 1.7x Casper; our production PA-binary runs over the richer semi-quadrant \
         family and lands below PUQ)\n"
    );
}

/// Figure 5(b): incremental maintenance vs bulk recomputation at 1M, k=50.
fn fig5b(w: &MasterWorkload) {
    println!("== fig5b: incremental maintenance vs bulk recomputation, 1M, k=50 ==\n");
    let k = 50;
    let n = w.scale(1_000_000);
    let db = w.sample(n);
    let map = w.config().map();
    let config = TreeConfig::lazy(TreeKind::Binary, map, k);
    let mut t =
        Table::new(&["movers(%)", "incremental(s)", "bulk(s)", "rows recomputed", "rows reused"]);
    for pct in [0.5, 1.0, 2.0, 5.0, 10.0] {
        let moves = random_moves(&db, &map, pct / 100.0, 200.0, 0xF16 + pct as u64);
        // Incremental: maintain tree + matrix.
        let mut inc = IncrementalAnonymizer::new(&db, config, k).unwrap();
        let (report, inc_time) = timed(|| inc.apply_moves(&moves).unwrap());
        // Bulk: rebuild everything on the moved snapshot.
        let mut moved = db.clone();
        moved.apply_moves(&moves).unwrap();
        let (_, bulk_time) = timed(|| Anonymizer::build(&moved, map, k).unwrap());
        assert_eq!(
            inc.optimal_cost().unwrap(),
            Anonymizer::build(&moved, map, k).unwrap().cost(),
            "incremental must agree with bulk"
        );
        t.row(vec![
            format!("{pct:.1}"),
            secs(inc_time),
            secs(bulk_time),
            report.rows_recomputed.to_string(),
            report.rows_reused.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: incremental wins below ~5% movers, converges to bulk above)\n");
}

/// Section VI-D: cost divergence vs number of jurisdictions.
fn vid(w: &MasterWorkload) {
    println!("== vid (Section VI-D): utility loss vs #jurisdictions, 1M, k=50 ==\n");
    let k = 50;
    let n = w.scale(1_000_000);
    let db = w.sample(n);
    let map = w.config().map();
    let optimal = Anonymizer::build(&db, map, k).unwrap().cost();
    let mut t = Table::new(&["jurisdictions", "achieved", "cost", "divergence(%)"]);
    for requested in [1usize, 4, 16, 64, 256, 1024, 2048, 4096] {
        let outcome = anonymize_partitioned(&db, map, k, requested).unwrap();
        t.row(vec![
            requested.to_string(),
            outcome.servers.len().to_string(),
            outcome.total_cost.to_string(),
            format!("{:.4}", 100.0 * outcome.divergence_from(optimal)),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: identical cost up to ~2k jurisdictions, < 1% through 4096)\n");
}

/// Section VII: per-request cloak lookup latency.
fn lookup(w: &MasterWorkload) {
    println!("== lookup (Section VII): per-request cloak lookup latency ==\n");
    let k = 50;
    let n = w.scale(1_000_000);
    let db = w.sample(n);
    let engine = Anonymizer::build(&db, w.config().map(), k).unwrap();
    let users: Vec<UserId> = db.users().collect();
    let reps = 1_000_000usize;
    let (hits, elapsed) = timed(|| {
        let mut hits = 0usize;
        for i in 0..reps {
            let user = users[i % users.len()];
            if engine.policy().cloak_of(user).is_some() {
                hits += 1;
            }
        }
        hits
    });
    assert_eq!(hits, reps);
    println!(
        "{reps} lookups in {}s -> {:.3} µs/lookup (paper reports 0.3-0.5 ms per \
         cloak lookup on 2005-era hardware)\n",
        secs(elapsed),
        elapsed.as_secs_f64() * 1e6 / reps as f64
    );
}

/// Extension: the paper's utility motivation made concrete — cloaked
/// nearest-neighbor candidate-set sizes as k grows, policy-aware optimum
/// vs Casper (Sections IV cost model and VII query serving).
fn query_utility(w: &MasterWorkload) {
    println!("== query (extension): cloaked-NN candidate sets vs k ==\n");
    use lbs_model::{AnonymizedRequest, RequestId, RequestParams};
    use lbs_query::{CloakedLbs, Poi, PoiId, PoiStore};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    let n = w.scale(250_000);
    let db = w.sample(n);
    let map = w.config().map();
    let mut rng = StdRng::seed_from_u64(0x901);
    let pois: Vec<Poi> = (0..10_000)
        .map(|i| Poi {
            id: PoiId(i as u64),
            location: Point::new(rng.gen_range(map.x0..map.x1), rng.gen_range(map.y0..map.y1)),
            category: "rest".into(),
        })
        .collect();
    let store = PoiStore::build(map, 1 << 11, pois).unwrap();
    let probes: Vec<UserId> = db.users().take(300).collect();

    let mut t = Table::new(&[
        "k",
        "PA avg cloak(m^2)",
        "PA candidates",
        "casper avg cloak(m^2)",
        "casper candidates",
    ]);
    for k in [10usize, 50, 100, 200] {
        let pa = Anonymizer::build(&db, map, k).unwrap();
        let casper = Casper::build(&db, map, k).unwrap().materialize(&db);
        let mut counts = [0usize; 2];
        for (which, policy) in [pa.policy(), &casper].into_iter().enumerate() {
            let mut lbs = CloakedLbs::new(store.clone());
            for &user in &probes {
                let cloak = *policy.cloak_of(user).unwrap();
                let ar = AnonymizedRequest::new(
                    RequestId(0),
                    cloak,
                    RequestParams::from_pairs([("poi", "rest")]),
                );
                counts[which] +=
                    lbs.nearest_for(&ar, db.location(user).unwrap()).candidates_fetched;
            }
        }
        t.row(vec![
            k.to_string(),
            format!("{:.0}", pa.avg_cloak_area()),
            format!("{:.1}", counts[0] as f64 / probes.len() as f64),
            format!("{:.0}", casper.avg_area_f64()),
            format!("{:.1}", counts[1] as f64 / probes.len() as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(the paper's cost model: smaller cloaks -> fewer candidates for the LBS to ship \
         and the client to filter; policy-aware stays within ~2x of Casper here too)\n"
    );
}

/// Extension: ablations over the design choices DESIGN.md calls out —
/// the Lemma-5 pass-up bound, lazy vs eager materialization, and the
/// sticky-cohort trajectory defence.
fn ablation(w: &MasterWorkload) {
    use lbs_core::{bulk_dp_fast_with_options, StickyAnonymizer};
    use lbs_tree::TreeStats;

    println!("== ablation (extension) ==\n");

    // (a) Lemma-5 bound: identical optimum, very different running time.
    println!("-- (a) Lemma-5 pass-up bound: DP time with/without, k=50 --");
    let k = 50;
    let mut t = Table::new(&["|D|", "with Lemma 5 (s)", "without (s)", "same cost"]);
    for paper_n in [10_000usize, 25_000, 50_000] {
        let db = w.sample(paper_n); // sample() caps at the master size

        let tree = SpatialTree::build(&db, TreeConfig::lazy(TreeKind::Binary, w.config().map(), k))
            .unwrap();
        let (with, t_with) =
            timed(|| bulk_dp_fast_with_options(&tree, k, true).unwrap().optimal_cost(&tree));
        let (without, t_without) =
            timed(|| bulk_dp_fast_with_options(&tree, k, false).unwrap().optimal_cost(&tree));
        t.row(vec![
            db.len().to_string(),
            secs(t_with),
            secs(t_without),
            (with.ok() == without.ok()).to_string(),
        ]);
    }
    println!("{}", t.render());

    // (b) Lazy vs eager materialization: tree size and DP time.
    println!("-- (b) lazy vs eager tree materialization, 50k users, k=50 --");
    let db = w.sample(w.scale(875_000).min(50_000));
    let mut t = Table::new(&["materialization", "nodes", "max depth", "build+DP (s)", "cost"]);
    for (name, cfg) in [
        ("lazy (split while d>=k)", TreeConfig::lazy(TreeKind::Binary, w.config().map(), k)),
        ("eager depth 16", TreeConfig::eager(TreeKind::Binary, w.config().map(), 16)),
    ] {
        let ((tree, cost), elapsed) = timed(|| {
            let tree = SpatialTree::build(&db, cfg).unwrap();
            let cost = lbs_core::bulk_dp_fast(&tree, k).unwrap().optimal_cost(&tree).unwrap();
            (tree, cost)
        });
        let stats = TreeStats::compute(&tree);
        t.row(vec![
            name.into(),
            stats.nodes.to_string(),
            stats.max_depth.to_string(),
            secs(elapsed),
            cost.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(eager trees materialize empty regions for nothing: more nodes, more time, \
         a marginal cost win only where the depth cap differs)\n"
    );

    // (b2) Semi-quadrant orientation: the paper's "ideally one would
    // choose dynamically" remark, measured.
    println!("-- (b2) semi-quadrant orientation (paper: fixed vertical), 50k users --");
    let mut t = Table::new(&["orientation", "cost", "avg cloak (m^2)", "vs fixed"]);
    let mut fixed_cost = 0u128;
    for (name, orientation) in [
        ("fixed vertical (paper)", lbs_tree::Orientation::FixedVertical),
        ("balanced (dynamic)", lbs_tree::Orientation::Balanced),
    ] {
        let cfg =
            TreeConfig::lazy(TreeKind::Binary, w.config().map(), k).with_orientation(orientation);
        let tree = SpatialTree::build(&db, cfg).unwrap();
        let cost = lbs_core::bulk_dp_fast(&tree, k).unwrap().optimal_cost(&tree).unwrap();
        if fixed_cost == 0 {
            fixed_cost = cost;
        }
        t.row(vec![
            name.into(),
            cost.to_string(),
            format!("{:.0}", cost as f64 / db.len() as f64),
            format!("{:.3}", cost as f64 / fixed_cost as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(measured finding: population-balanced orientation does NOT beat the paper's \
         fixed-vertical choice — the DP already optimizes over whatever tree it gets, \
         and balance is the wrong objective for area cost; the paper's 'for simplicity' \
         shortcut costs nothing)\n"
    );

    // (c) Trajectory defence: intersection-attack candidates over epochs.
    println!("-- (c) sticky cohorts vs per-snapshot optimum under linking --");
    use lbs_attack::{LinkedObservation, TrajectoryAttacker};
    let n = w.scale(50_000).clamp(2_000, 20_000);
    let mut db = w.sample(n);
    let map = w.config().map();
    let victim = db.users().next().unwrap();
    let sticky = StickyAnonymizer::new(&db, map, k).unwrap();
    let attacker = TrajectoryAttacker::new();
    let (mut opt_obs, mut stk_obs) = (Vec::new(), Vec::new());
    let mut t = Table::new(&[
        "epoch",
        "optimal candidates",
        "sticky candidates",
        "optimal cost",
        "sticky cost",
    ]);
    for epoch in 0..5u64 {
        if epoch > 0 {
            let moves = random_moves(&db, &map, 0.5, 3_000.0, epoch);
            db.apply_moves(&moves).unwrap();
        }
        let optimal = Anonymizer::build(&db, map, k).unwrap().policy().clone();
        opt_obs.push(LinkedObservation {
            db: db.clone(),
            policy: optimal.clone(),
            cloak: *optimal.cloak_of(victim).unwrap(),
        });
        let stable = sticky.policy_for(&db).unwrap();
        stk_obs.push(LinkedObservation {
            db: db.clone(),
            policy: stable.clone(),
            cloak: *stable.cloak_of(victim).unwrap(),
        });
        t.row(vec![
            epoch.to_string(),
            attacker.possible_senders(&opt_obs).len().to_string(),
            attacker.possible_senders(&stk_obs).len().to_string(),
            optimal.cost_exact().unwrap().to_string(),
            stable.cost_exact().unwrap().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(per-snapshot optimality leaks under linking — the future work the paper names; \
         cohort stability restores >= k at growing cloak cost)\n"
    );
}

/// Extension: the work-stealing execution engine vs the sequential
/// server loop, with the observability layer's counters and stage
/// timers. On this 1-core host the pool cannot beat the sequential run,
/// so the interesting columns are correctness (identical cost) and the
/// scheduling counters (steals, scratch reuses, queue wait).
fn engine(w: &MasterWorkload, metrics: &Metrics) {
    println!("== engine (extension): work-stealing pool vs sequential servers ==\n");
    let k = 50;
    let n = w.scale(250_000);
    let db = w.sample(n);
    let map = w.config().map();
    let servers = 64;

    let (seq, seq_time) = timed(|| anonymize_partitioned(&db, map, k, servers).unwrap());
    let mut t = Table::new(&[
        "workers",
        "wall(s)",
        "server phase(s)",
        "cost == sequential",
        "steals",
        "scratch reuses",
        "avg queue wait(ms)",
    ]);
    for workers in [1usize, 2, 4, 8] {
        metrics.reset();
        let cfg = EngineConfig { workers, ..EngineConfig::default() };
        let (ws, ws_time) =
            timed(|| anonymize_work_stealing(&db, map, k, servers, &cfg, Some(metrics)).unwrap());
        let waits = metrics.stage_calls(Stage::QueueWait).max(1);
        t.row(vec![
            workers.to_string(),
            secs(ws_time),
            secs(ws.server_wall_time),
            (ws.total_cost == seq.total_cost).to_string(),
            metrics.get(Counter::TasksStolen).to_string(),
            metrics.get(Counter::ScratchReuses).to_string(),
            format!(
                "{:.3}",
                metrics.stage_total(Stage::QueueWait).as_secs_f64() * 1e3 / waits as f64
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(sequential loop: {}s for {} jurisdictions; the pool's policies are bit-identical \
         for every worker count — merge order is partition order, not completion order)\n",
        secs(seq_time),
        seq.servers.len()
    );
}

/// Theorem 1: the circular-cloak problem is NP-complete — exact solver
/// blows up exponentially while the greedy heuristic stays flat.
fn thm1() {
    println!("== thm1: optimal policy-aware anonymization with circular cloaks ==\n");
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0x7E01);
    let k = 2;
    let mut t = Table::new(&["n", "exact(s)", "greedy(s)", "greedy/exact cost"]);
    for n in [4usize, 6, 8, 10, 12, 14] {
        let db = LocationDb::from_rows((0..n).map(|i| {
            (UserId(i as u64), Point::new(rng.gen_range(0..1000), rng.gen_range(0..1000)))
        }))
        .unwrap();
        let centers: Vec<Point> =
            (0..4).map(|_| Point::new(rng.gen_range(0..1000), rng.gen_range(0..1000))).collect();
        let (exact, exact_t) = timed(|| optimal_circular_policy(&db, &centers, k).unwrap());
        let (greedy, greedy_t) = timed(|| greedy_circular_policy(&db, &centers, k).unwrap());
        t.row(vec![
            n.to_string(),
            format!("{:.4}", exact_t.as_secs_f64()),
            format!("{:.6}", greedy_t.as_secs_f64()),
            format!("{:.3}", greedy.cost / exact.cost),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(Theorem 1: the exact problem is NP-complete; the quad-tree restriction is what \
         makes the paper's PTIME result possible)\n"
    );
}
