//! Scratch performance probe (paper scale), with the per-stage breakdown
//! of the single-jurisdiction build: tree build vs DP vs extraction.
use lbs_core::{Anonymizer, DpScratch};
use lbs_metrics::{Metrics, Stage};
use lbs_tree::{TreeConfig, TreeKind};
use lbs_workload::{generate_master, sample, BayAreaConfig};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
    let k: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(50);
    let cfg = BayAreaConfig::default();
    let t0 = Instant::now();
    let master = generate_master(&cfg);
    eprintln!("master {} users in {:?}", master.len(), t0.elapsed());
    let t0 = Instant::now();
    let db = sample(&master, n, 1);
    eprintln!("sample {} in {:?}", db.len(), t0.elapsed());
    let metrics = Metrics::new();
    let mut scratch = DpScratch::new();
    let tree_config = TreeConfig::lazy(TreeKind::Binary, cfg.map(), k);
    let t0 = Instant::now();
    let engine =
        Anonymizer::build_instrumented(&db, tree_config, k, Some(&mut scratch), Some(&metrics))
            .unwrap();
    eprintln!(
        "anonymize n={n} k={k}: {:?} cost={} stats: {}",
        t0.elapsed(),
        engine.cost(),
        engine.tree_stats()
    );
    for stage in [Stage::TreeBuild, Stage::Dp, Stage::Extract] {
        eprintln!("  {stage:?}: {:?}", metrics.stage_total(stage));
    }
}
