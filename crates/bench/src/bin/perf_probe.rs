//! Scratch performance probe (paper scale).
use lbs_core::Anonymizer;
use lbs_workload::{generate_master, sample, BayAreaConfig};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
    let k: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(50);
    let cfg = BayAreaConfig::default();
    let t0 = Instant::now();
    let master = generate_master(&cfg);
    eprintln!("master {} users in {:?}", master.len(), t0.elapsed());
    let t0 = Instant::now();
    let db = sample(&master, n, 1);
    eprintln!("sample {} in {:?}", db.len(), t0.elapsed());
    let t0 = Instant::now();
    let engine = Anonymizer::build(&db, cfg.map(), k).unwrap();
    eprintln!(
        "anonymize n={n} k={k}: {:?} cost={} stats: {}",
        t0.elapsed(),
        engine.cost(),
        engine.tree_stats()
    );
}
