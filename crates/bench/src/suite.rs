//! The seeded benchmark runner behind `lbs bench`.
//!
//! All timing flows through one [`Sampler`] owned by the runner: case
//! bodies in [`crate::cases`] receive it and wrap the region they want
//! measured in [`Sampler::sample`]. They never read the clock themselves
//! (enforced by the `no-wall-clock-in-bench-cases` lint), so every
//! recorded nanosecond shares one timer and one calibration.

use crate::cases::{self, WorkBench};
use crate::snapshot::{BenchSnapshot, CaseRecord, SCHEMA_VERSION};
use lbs_metrics::median_p95_ns;
use std::hint::black_box;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// Which case list to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Tiny 10k-scale cases for CI smoke (seconds, not minutes).
    Smoke,
    /// The paper-scale suite: `Bulk_dp` at 100k/1M/1.75M × k ∈ {10, 50},
    /// incremental commit latency, engine scaling, query-cache hits.
    Full,
    /// Smoke ∪ Full — what the committed baseline snapshot is built from,
    /// so both tiers can later compare against it.
    All,
}

impl Tier {
    /// Parses the `--suite` flag value.
    ///
    /// # Errors
    /// Unknown tier names.
    pub fn parse(raw: &str) -> Result<Tier, String> {
        match raw {
            "smoke" => Ok(Tier::Smoke),
            "full" => Ok(Tier::Full),
            "all" => Ok(Tier::All),
            other => Err(format!("unknown suite {other:?}; expected smoke|full|all")),
        }
    }
}

/// The harness timer: the only clock a bench case may read.
///
/// A case calls [`Sampler::sample`] once per repeat; the closure's wall
/// time is recorded. Setup (workload generation, tree warmup, request
/// pre-computation) happens outside `sample` and is never charged.
pub struct Sampler {
    repeats: u32,
    samples: Vec<u64>,
}

impl Sampler {
    fn new(repeats: u32) -> Self {
        Sampler { repeats: repeats.max(1), samples: Vec::with_capacity(repeats as usize) }
    }

    /// How many timed repeats the case body should perform.
    pub fn repeats(&self) -> u32 {
        self.repeats
    }

    /// Times one execution of `f` and records it.
    pub fn sample<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let started = Instant::now();
        let value = black_box(f());
        self.samples.push(started.elapsed().as_nanos() as u64);
        value
    }

    fn into_record(self) -> CaseRecord {
        let (median_ns, p95_ns) = median_p95_ns(&self.samples);
        CaseRecord { median_ns, p95_ns, iters: self.samples.len() as u32 }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Iterations of the calibration spin loop — fixed forever, so snapshots
/// from different builds stay comparable.
pub const CALIBRATION_SPINS: u64 = 1 << 24;

/// Times a fixed, allocation-free splitmix64 spin loop
/// ([`CALIBRATION_SPINS`] steps), taking the minimum of three runs. The
/// result is this host's speed unit: snapshot comparisons divide every
/// case by it, so a 2× slower machine with 2× slower cases reads as "no
/// change". Returns at least 1 ns.
pub fn calibrate_ns() -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let mut state = 0x5EED_CAFE_F00D_D00Du64;
        let mut acc = 0u64;
        let started = Instant::now();
        for _ in 0..CALIBRATION_SPINS {
            acc ^= splitmix64(&mut state);
        }
        let elapsed = started.elapsed().as_nanos() as u64;
        black_box(acc);
        best = best.min(elapsed);
    }
    best.max(1)
}

/// Best-effort git revision of the checkout at `workspace_root`, read
/// straight from `.git` (no subprocess, no git dependency): follows
/// `HEAD` to a loose ref, then falls back to `packed-refs`, then to
/// `"unknown"`.
pub fn git_rev(workspace_root: &Path) -> String {
    let git = workspace_root.join(".git");
    let Ok(head) = std::fs::read_to_string(git.join("HEAD")) else {
        return "unknown".to_string();
    };
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        // Detached HEAD: the file is the hash itself.
        return head.to_string();
    };
    if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
        return hash.trim().to_string();
    }
    if let Ok(packed) = std::fs::read_to_string(git.join("packed-refs")) {
        for line in packed.lines() {
            if let Some(hash) = line.strip_suffix(refname) {
                return hash.trim().to_string();
            }
        }
    }
    "unknown".to_string()
}

/// The deterministic case-name list a tier will run, in execution order.
/// Same tier → same list; the workload seed does not change it.
pub fn case_names(tier: Tier) -> Vec<String> {
    cases::cases(tier).into_iter().map(|c| c.name).collect()
}

/// Runs the tier's cases under `seed` with `repeats` timed iterations
/// each, writing one progress line per case to `progress`, and returns
/// the finished snapshot (calibration included).
pub fn run_suite(
    tier: Tier,
    seed: u64,
    repeats: u32,
    git_rev: String,
    progress: &mut dyn Write,
) -> BenchSnapshot {
    let host_calibration_ns = calibrate_ns();
    let _ = writeln!(progress, "calibration: {host_calibration_ns} ns / {CALIBRATION_SPINS} spins");
    let mut wb = WorkBench::new(seed);
    let mut records = std::collections::BTreeMap::new();
    for mut case in cases::cases(tier) {
        let mut sampler = Sampler::new(repeats);
        (case.run)(&mut wb, &mut sampler);
        let record = sampler.into_record();
        let _ = writeln!(
            progress,
            "{:<32} median {:>10.3} ms  p95 {:>10.3} ms  ({} iters)",
            case.name,
            record.median_ns as f64 / 1e6,
            record.p95_ns as f64 / 1e6,
            record.iters
        );
        records.insert(case.name, record);
    }
    BenchSnapshot { schema: SCHEMA_VERSION, seed, git_rev, host_calibration_ns, cases: records }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_records_one_sample_per_call() {
        let mut s = Sampler::new(3);
        assert_eq!(s.repeats(), 3);
        let mut acc = 0u64;
        for i in 0..s.repeats() as u64 {
            acc += s.sample(|| i + 1);
        }
        assert_eq!(acc, 6);
        let rec = s.into_record();
        assert_eq!(rec.iters, 3);
        assert!(rec.p95_ns >= rec.median_ns);
    }

    #[test]
    fn calibration_is_positive() {
        assert!(calibrate_ns() >= 1);
    }

    #[test]
    fn tier_parse_roundtrip() {
        assert_eq!(Tier::parse("smoke").unwrap(), Tier::Smoke);
        assert_eq!(Tier::parse("full").unwrap(), Tier::Full);
        assert_eq!(Tier::parse("all").unwrap(), Tier::All);
        assert!(Tier::parse("tiny").is_err());
    }

    #[test]
    fn git_rev_handles_missing_repo() {
        let dir = std::env::temp_dir().join("lbs-bench-no-git");
        let _ = std::fs::create_dir_all(&dir);
        assert_eq!(git_rev(&dir), "unknown");
    }
}
