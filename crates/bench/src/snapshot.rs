//! Machine-normalized performance snapshots.
//!
//! A [`BenchSnapshot`] is the committed artifact of one `lbs bench` run:
//! per-case median/p95 nanoseconds plus a *host calibration scalar* — the
//! time of a fixed splitmix64 spin loop on the machine that produced the
//! snapshot. Comparing two snapshots divides each case by its snapshot's
//! calibration first, so a faster CI box does not mask a real regression
//! and a slower laptop does not invent one. Case keys live in a
//! `BTreeMap`, so serialization order (and therefore the committed JSON
//! diff) is stable across runs.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Bump when the JSON layout changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// One benchmark case's aggregated timings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaseRecord {
    /// Median wall nanoseconds over the repeats (upper-middle element for
    /// even counts — always an observed sample).
    pub median_ns: u64,
    /// Nearest-rank p95 over the repeats.
    pub p95_ns: u64,
    /// How many timed iterations produced the statistics.
    pub iters: u32,
}

/// A full suite run: environment fingerprint plus per-case records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Layout version ([`SCHEMA_VERSION`]).
    pub schema: u32,
    /// Master workload seed the suite ran under.
    pub seed: u64,
    /// Git revision of the tree that produced the snapshot (or
    /// `"unknown"` outside a git checkout).
    pub git_rev: String,
    /// Nanoseconds the fixed calibration spin loop took on this host
    /// (see [`crate::suite::calibrate_ns`]). Never zero.
    pub host_calibration_ns: u64,
    /// Case name → aggregated timings, in stable (sorted) order.
    pub cases: BTreeMap<String, CaseRecord>,
}

impl BenchSnapshot {
    /// Pretty JSON, newline-terminated, key order stable.
    pub fn to_json(&self) -> String {
        // to_string_pretty cannot fail on this map-and-scalars shape.
        let mut s = serde_json::to_string_pretty(self).unwrap_or_default();
        s.push('\n');
        s
    }

    /// Parses a snapshot, rejecting unknown schema versions.
    ///
    /// # Errors
    /// Malformed JSON or a schema newer than this binary understands.
    pub fn from_json(raw: &str) -> Result<Self, String> {
        let snap: BenchSnapshot =
            serde_json::from_str(raw).map_err(|e| format!("snapshot parse error: {e}"))?;
        if snap.schema > SCHEMA_VERSION {
            return Err(format!(
                "snapshot schema {} is newer than supported {}",
                snap.schema, SCHEMA_VERSION
            ));
        }
        Ok(snap)
    }

    /// This snapshot's normalized time for `case`: median nanoseconds
    /// divided by the host calibration scalar (dimensionless).
    pub fn normalized(&self, case: &str) -> Option<f64> {
        let rec = self.cases.get(case)?;
        Some(rec.median_ns as f64 / self.host_calibration_ns.max(1) as f64)
    }
}

/// One case's old-vs-new comparison line.
#[derive(Debug, Clone)]
pub struct CaseComparison {
    /// Case name.
    pub name: String,
    /// Raw median in the baseline snapshot.
    pub old_ns: u64,
    /// Raw median in the new snapshot.
    pub new_ns: u64,
    /// Normalized new/old ratio: > 1 means slower after calibration.
    pub ratio: f64,
    /// Whether the slowdown exceeds the threshold.
    pub regressed: bool,
}

/// Outcome of comparing two snapshots.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// The regression threshold in percent that was applied.
    pub threshold_pct: f64,
    /// Per-case lines for every case present in both snapshots, in
    /// baseline order.
    pub rows: Vec<CaseComparison>,
    /// Baseline cases the new run did not execute (informational — a
    /// smoke run compared against a full baseline is expected to skip
    /// most of it).
    pub missing_in_new: Vec<String>,
    /// Cases the new run added (informational).
    pub added_in_new: Vec<String>,
}

impl CompareReport {
    /// Whether the comparison passes (no case regressed beyond the
    /// threshold). Cases missing on either side never fail the gate.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| !r.regressed)
    }

    /// The two snapshots share no case name at all (and neither side is
    /// empty): every gate is vacuously green, which almost always means
    /// the wrong baseline file was compared. Callers should fail loudly
    /// instead of reporting a silent pass.
    pub fn is_disjoint(&self) -> bool {
        self.rows.is_empty() && !self.missing_in_new.is_empty() && !self.added_in_new.is_empty()
    }

    /// The regressed rows, worst first.
    pub fn regressions(&self) -> Vec<&CaseComparison> {
        let mut out: Vec<&CaseComparison> = self.rows.iter().filter(|r| r.regressed).collect();
        out.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
        out
    }

    /// Human-readable table of every compared case.
    pub fn render(&self) -> String {
        let mut table = crate::Table::new(&["case", "old(ms)", "new(ms)", "norm-ratio", "verdict"]);
        for row in &self.rows {
            table.row(vec![
                row.name.clone(),
                format!("{:.3}", row.old_ns as f64 / 1e6),
                format!("{:.3}", row.new_ns as f64 / 1e6),
                format!("{:.3}", row.ratio),
                if row.regressed { "REGRESSED".into() } else { "ok".into() },
            ]);
        }
        let mut out = table.render();
        if !self.missing_in_new.is_empty() {
            out.push_str(&format!("not re-run ({} baseline cases)\n", self.missing_in_new.len()));
        }
        for name in &self.added_in_new {
            out.push_str(&format!("new case (no baseline): {name}\n"));
        }
        out
    }
}

/// Compares `new` against the `old` baseline: a case regresses when its
/// calibration-normalized median grew by more than `threshold_pct`
/// percent. Only cases present in both snapshots gate the result.
pub fn compare(old: &BenchSnapshot, new: &BenchSnapshot, threshold_pct: f64) -> CompareReport {
    let limit = 1.0 + threshold_pct / 100.0;
    let mut rows = Vec::new();
    let mut missing_in_new = Vec::new();
    for (name, old_rec) in &old.cases {
        let Some(new_rec) = new.cases.get(name) else {
            missing_in_new.push(name.clone());
            continue;
        };
        let old_norm = old_rec.median_ns.max(1) as f64 / old.host_calibration_ns.max(1) as f64;
        let new_norm = new_rec.median_ns as f64 / new.host_calibration_ns.max(1) as f64;
        let ratio = new_norm / old_norm;
        rows.push(CaseComparison {
            name: name.clone(),
            old_ns: old_rec.median_ns,
            new_ns: new_rec.median_ns,
            ratio,
            regressed: ratio > limit,
        });
    }
    let added_in_new = new.cases.keys().filter(|k| !old.cases.contains_key(*k)).cloned().collect();
    CompareReport { threshold_pct, rows, missing_in_new, added_in_new }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(cal: u64, cases: &[(&str, u64)]) -> BenchSnapshot {
        BenchSnapshot {
            schema: SCHEMA_VERSION,
            seed: 42,
            git_rev: "deadbeef".into(),
            host_calibration_ns: cal,
            cases: cases
                .iter()
                .map(|&(name, ns)| {
                    (name.to_string(), CaseRecord { median_ns: ns, p95_ns: ns, iters: 5 })
                })
                .collect(),
        }
    }

    #[test]
    fn identical_snapshots_pass() {
        let s = snap(1000, &[("a", 100), ("b", 200)]);
        let report = compare(&s, &s, 20.0);
        assert!(report.passed());
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| (r.ratio - 1.0).abs() < 1e-9));
    }

    #[test]
    fn calibration_cancels_host_speed() {
        // New host is 2x slower overall (calibration 2000 vs 1000), and the
        // case is 2x slower raw — normalized that is *no* change.
        let old = snap(1000, &[("a", 100)]);
        let new = snap(2000, &[("a", 200)]);
        let report = compare(&old, &new, 20.0);
        assert!(report.passed());
        assert!((report.rows[0].ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn missing_cases_are_informational_not_failures() {
        let old = snap(1000, &[("a", 100), ("only-old", 50)]);
        let new = snap(1000, &[("a", 100), ("only-new", 70)]);
        let report = compare(&old, &new, 20.0);
        assert!(report.passed());
        assert_eq!(report.missing_in_new, vec!["only-old".to_string()]);
        assert_eq!(report.added_in_new, vec!["only-new".to_string()]);
        assert!(!report.is_disjoint(), "case `a` is shared");
    }

    #[test]
    fn zero_shared_cases_is_flagged_as_disjoint() {
        let old = snap(1000, &[("old-a", 100), ("old-b", 50)]);
        let new = snap(1000, &[("new-a", 100)]);
        let report = compare(&old, &new, 20.0);
        assert!(report.passed(), "nothing shared, so nothing can regress");
        assert!(report.is_disjoint(), "zero shared cases must be loud, not a silent pass");
        // A one-sided emptiness is not disjoint — it is an empty run.
        let empty = snap(1000, &[]);
        assert!(!compare(&old, &empty, 20.0).is_disjoint());
        assert!(!compare(&empty, &new, 20.0).is_disjoint());
    }

    #[test]
    fn schema_from_the_future_is_rejected() {
        let mut s = snap(1000, &[]);
        s.schema = SCHEMA_VERSION + 1;
        let err = BenchSnapshot::from_json(&s.to_json()).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }
}
