//! Benchmark case bodies for the `lbs bench` suite.
//!
//! **Timing constraint** (enforced by the `no-wall-clock-in-bench-cases`
//! lint): case bodies never read `Instant`/`SystemTime` directly. The
//! only clock in this module is the harness [`Sampler`] handed to each
//! case — setup runs untimed, and exactly the region inside
//! [`Sampler::sample`] is charged, under one shared calibration.

use crate::suite::{Sampler, Tier};
use crate::MasterWorkload;
use lbs_core::{Anonymizer, DpScratch, IncrementalAnonymizer};
use lbs_geom::Point;
use lbs_model::{AnonymizedRequest, Move, RequestId, RequestParams, UserId};
use lbs_parallel::{anonymize_work_stealing, EngineConfig};
use lbs_query::{CloakedLbs, Poi, PoiId, PoiStore};
use lbs_tree::{TreeConfig, TreeKind};
use lbs_workload::{derive_seed, random_moves};
use std::collections::HashMap;

/// Shared state for one suite run: the master seed, lazily generated
/// workloads keyed by user count (generated once, reused by every case
/// that asks for the same size), and a DP scratch arena reused across
/// cases and repeats — the same cross-run reuse the parallel engine's
/// `ScratchPool` gives its workers.
pub struct WorkBench {
    seed: u64,
    workloads: HashMap<usize, MasterWorkload>,
    scratch: DpScratch,
}

impl WorkBench {
    /// An empty bench with the given master seed.
    pub fn new(seed: u64) -> Self {
        WorkBench { seed, workloads: HashMap::new(), scratch: DpScratch::new() }
    }

    fn ensure(&mut self, n: usize) {
        if !self.workloads.contains_key(&n) {
            self.workloads.insert(n, MasterWorkload::generate_sized(n, self.seed));
        }
    }
}

/// A case body: untimed setup plus `sampler.repeats()` timed iterations.
pub type CaseBody = Box<dyn FnMut(&mut WorkBench, &mut Sampler)>;

/// One named benchmark case: `run` performs untimed setup, then times
/// `sampler.repeats()` iterations through the harness timer.
pub struct CaseDef {
    /// Stable case key, e.g. `bulk_dp/n1750000/k50` — snapshot JSON and
    /// `--compare` match on it.
    pub name: String,
    /// The case body.
    pub run: CaseBody,
}

/// The paper's core measurement: full bulk anonymization (tree build +
/// `Bulk_dp` + policy extraction) at `n` users, anonymity level `k`.
fn bulk_dp(n: usize, k: usize) -> CaseDef {
    CaseDef {
        name: format!("bulk_dp/n{n}/k{k}"),
        run: Box::new(move |wb, sampler| {
            wb.ensure(n);
            let WorkBench { workloads, scratch, .. } = wb;
            let w = &workloads[&n];
            let (db, map) = (w.master(), w.config().map());
            for _ in 0..sampler.repeats() {
                let engine = sampler.sample(|| {
                    Anonymizer::build_instrumented(
                        db,
                        TreeConfig::lazy(TreeKind::Binary, map, k),
                        k,
                        Some(&mut *scratch),
                        None,
                    )
                });
                assert!(engine.is_ok(), "bulk_dp workload anonymizes");
            }
        }),
    }
}

/// Commit latency of the incremental anonymizer: each repeat stages one
/// pre-generated churn batch (1% of users moving ≤ 200 m, the Figure
/// 5(b) model) and times `apply_moves` — dirty-row recomputation
/// included, policy extraction excluded.
fn incremental_commit(n: usize) -> CaseDef {
    let k = 10;
    CaseDef {
        name: format!("incremental_commit/n{n}"),
        run: Box::new(move |wb, sampler| {
            wb.ensure(n);
            let seed = wb.seed;
            let w = &wb.workloads[&n];
            let (db, map) = (w.master(), w.config().map());
            let mut inc =
                IncrementalAnonymizer::new(db, TreeConfig::lazy(TreeKind::Binary, map, k), k)
                    .expect("bench workload anonymizes");
            let batches: Vec<Vec<Move>> = (0..u64::from(sampler.repeats()))
                .map(|i| random_moves(db, &map, 0.01, 200.0, derive_seed(seed, 0xbe9c + i)))
                .collect();
            for batch in &batches {
                let report = sampler.sample(|| inc.apply_moves(batch));
                assert!(report.is_ok(), "churn batch stays on-map");
            }
        }),
    }
}

/// Per-commit cost of the batched incremental path at batch size `m`:
/// each repeat stages exactly `m` moves (distinct users, ≤ 200 m) and
/// times one `apply_moves` commit — dirty-path coalescing and the
/// subtree cost-vector cache included. Dividing the median by `m` gives
/// the per-move cost; the batching win is `m1`'s median versus
/// `m{64,4096}`'s median over `m` (see EXPERIMENTS.md §incremental).
fn incremental_batch(n: usize, m: usize) -> CaseDef {
    let k = 10;
    CaseDef {
        name: format!("incremental_batch/m{m}"),
        run: Box::new(move |wb, sampler| {
            wb.ensure(n);
            let seed = wb.seed;
            let w = &wb.workloads[&n];
            let (db, map) = (w.master(), w.config().map());
            let mut inc =
                IncrementalAnonymizer::new(db, TreeConfig::lazy(TreeKind::Binary, map, k), k)
                    .expect("bench workload anonymizes");
            let fraction = m as f64 / n as f64;
            let batches: Vec<Vec<Move>> = (0..u64::from(sampler.repeats()))
                .map(|i| random_moves(db, &map, fraction, 200.0, derive_seed(seed, 0xba7c + i)))
                .collect();
            for batch in &batches {
                assert_eq!(batch.len(), m, "workload generates exactly m movers");
                let report = sampler.sample(|| inc.apply_moves(batch));
                assert!(report.is_ok(), "churn batch stays on-map");
            }
        }),
    }
}

/// Work-stealing engine throughput at a fixed jurisdiction count and
/// varying worker count — the scaling curve CI watches for scheduler
/// regressions.
fn engine_scaling(n: usize, workers: usize, servers: usize) -> CaseDef {
    let k = 10;
    CaseDef {
        name: format!("engine_scaling/n{n}/w{workers}"),
        run: Box::new(move |wb, sampler| {
            wb.ensure(n);
            let w = &wb.workloads[&n];
            let (db, map) = (w.master(), w.config().map());
            let cfg = EngineConfig { workers, ..EngineConfig::default() };
            for _ in 0..sampler.repeats() {
                let outcome =
                    sampler.sample(|| anonymize_work_stealing(db, map, k, servers, &cfg, None));
                assert!(outcome.is_ok(), "engine run succeeds");
            }
        }),
    }
}

/// The CSP answer-cache hit path: a warmed cache serves a fixed request
/// set; every timed request must hit (asserted), so the number is pure
/// cache lookup + client-side filtering.
fn query_cache_hit(n: usize, requests: usize) -> CaseDef {
    let k = 10;
    CaseDef {
        name: format!("query_cache/n{n}/hit_path"),
        run: Box::new(move |wb, sampler| {
            wb.ensure(n);
            let w = &wb.workloads[&n];
            let (db, map) = (w.master(), w.config().map());
            let engine = Anonymizer::build(db, map, k).expect("bench workload anonymizes");
            let locations: HashMap<UserId, Point> = db.iter().collect();
            let pois: Vec<Poi> = db
                .iter()
                .step_by(40)
                .enumerate()
                .map(|(i, (_, p))| Poi {
                    id: PoiId(i as u64),
                    location: p,
                    category: "cafe".into(),
                })
                .collect();
            let store = PoiStore::build(map, map.width() / 32, pois).expect("grid divides map");
            let mut lbs = CloakedLbs::new(store);
            let reqs: Vec<(AnonymizedRequest, Point)> = engine
                .policy()
                .iter()
                .take(requests)
                .enumerate()
                .map(|(i, (user, region))| {
                    let ar = AnonymizedRequest::new(
                        RequestId(i as u64),
                        *region,
                        RequestParams::from_pairs([("poi", "cafe")]),
                    );
                    (ar, locations[&user])
                })
                .collect();
            for (ar, p) in &reqs {
                let _ = lbs.nearest_for(ar, *p); // warm the cache, untimed
            }
            for _ in 0..sampler.repeats() {
                let hits = sampler.sample(|| {
                    let mut hits = 0usize;
                    for (ar, p) in &reqs {
                        if lbs.nearest_for(ar, *p).cache_hit {
                            hits += 1;
                        }
                    }
                    hits
                });
                assert_eq!(hits, reqs.len(), "warm cache serves every request");
            }
        }),
    }
}

/// The paper's §V shared-nothing pipeline: jurisdiction partitioning,
/// per-shard `Bulk_dp`, and the policy merge, timed end to end at a
/// fixed population and varying shard count — the scaling curve behind
/// `lbs serve --shards N`.
fn shard_scaling(n: usize, shards: usize) -> CaseDef {
    let k = 10;
    CaseDef {
        name: format!("shard_scaling/n{n}/s{shards}"),
        run: Box::new(move |wb, sampler| {
            wb.ensure(n);
            let w = &wb.workloads[&n];
            let (db, map) = (w.master(), w.config().map());
            for _ in 0..sampler.repeats() {
                let outcome = sampler.sample(|| lbs_runtime::sharded_bulk(db, map, k, shards));
                assert!(outcome.is_ok(), "sharded bulk anonymizes");
            }
        }),
    }
}

/// The tier's case list, in execution order. Deterministic: same tier →
/// same names, regardless of seed or host.
pub fn cases(tier: Tier) -> Vec<CaseDef> {
    match tier {
        Tier::Smoke => vec![
            bulk_dp(10_000, 10),
            bulk_dp(10_000, 50),
            incremental_commit(10_000),
            incremental_batch(10_000, 1),
            incremental_batch(10_000, 64),
            incremental_batch(10_000, 4096),
            engine_scaling(10_000, 2, 16),
            query_cache_hit(10_000, 512),
            shard_scaling(10_000, 2),
        ],
        Tier::Full => vec![
            bulk_dp(100_000, 10),
            bulk_dp(100_000, 50),
            bulk_dp(1_000_000, 10),
            bulk_dp(1_000_000, 50),
            bulk_dp(1_750_000, 10),
            bulk_dp(1_750_000, 50),
            incremental_commit(100_000),
            engine_scaling(250_000, 1, 64),
            engine_scaling(250_000, 2, 64),
            engine_scaling(250_000, 4, 64),
            engine_scaling(250_000, 8, 64),
            query_cache_hit(100_000, 2_048),
            shard_scaling(100_000, 2),
            shard_scaling(100_000, 4),
            shard_scaling(100_000, 8),
        ],
        Tier::All => {
            let mut out = cases(Tier::Smoke);
            for case in cases(Tier::Full) {
                if !out.iter().any(|existing| existing.name == case.name) {
                    out.push(case);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::case_names;

    #[test]
    fn case_names_are_unique_per_tier() {
        for tier in [Tier::Smoke, Tier::Full, Tier::All] {
            let names = case_names(tier);
            let mut deduped = names.clone();
            deduped.sort();
            deduped.dedup();
            assert_eq!(deduped.len(), names.len(), "duplicate case name in {tier:?}");
        }
    }

    #[test]
    fn all_tier_is_smoke_union_full() {
        let all = case_names(Tier::All);
        for name in case_names(Tier::Smoke).iter().chain(case_names(Tier::Full).iter()) {
            assert!(all.contains(name), "{name} missing from All");
        }
        assert_eq!(all.len(), case_names(Tier::Smoke).len() + case_names(Tier::Full).len());
    }
}
