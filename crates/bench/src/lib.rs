//! Shared plumbing for the experiment harness and Criterion benches:
//! workload caching, wall-clock timing, and table rendering — plus the
//! `lbs bench` self-measuring suite ([`suite`], [`cases`]) and its
//! committed snapshot format ([`snapshot`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cases;
pub mod snapshot;
pub mod suite;

use lbs_model::LocationDb;
use lbs_workload::{derive_seed, generate_master, sample, BayAreaConfig};
use std::time::{Duration, Instant};

/// Lazily generated master workload shared by all experiments in one
/// process (generation itself takes ~0.5 s for 1.75M users).
pub struct MasterWorkload {
    cfg: BayAreaConfig,
    master: LocationDb,
}

impl MasterWorkload {
    /// Generates the paper-scale master set (1.75M users), or a scaled-down
    /// one when `quick` is set (for smoke runs and CI), under the default
    /// master seed.
    pub fn generate(quick: bool) -> Self {
        Self::generate_seeded(quick, BayAreaConfig::default().seed)
    }

    /// As [`generate`](Self::generate) with an explicit master seed — the
    /// `--seed` flag of the experiment harness. Every downstream sample is
    /// derived from this one seed via [`derive_seed`], so a whole run
    /// replays from the single number it prints.
    pub fn generate_seeded(quick: bool, seed: u64) -> Self {
        let base = if quick { BayAreaConfig::scaled_to(100_000) } else { BayAreaConfig::default() };
        let cfg = BayAreaConfig { seed, ..base };
        let master = generate_master(&cfg);
        MasterWorkload { cfg, master }
    }

    /// A master set of exactly `users` users under `seed` — the bench
    /// suite's fixed-size workloads (`n` is embedded in every case name,
    /// so two snapshots always measured the same population).
    pub fn generate_sized(users: usize, seed: u64) -> Self {
        let cfg = BayAreaConfig { seed, ..BayAreaConfig::scaled_to(users) };
        let master = generate_master(&cfg);
        MasterWorkload { cfg, master }
    }

    /// The generation parameters.
    pub fn config(&self) -> &BayAreaConfig {
        &self.cfg
    }

    /// The full master database.
    pub fn master(&self) -> &LocationDb {
        &self.master
    }

    /// A deterministic `n`-user sample (capped at the master size), keyed
    /// off the master seed so `--seed` changes it too.
    pub fn sample(&self, n: usize) -> LocationDb {
        sample(&self.master, n.min(self.master.len()), derive_seed(self.cfg.seed, n as u64))
    }

    /// Scales a paper-sized |D| down proportionally in quick mode, keeping
    /// the whole sweep's shape consistent.
    pub fn scale(&self, paper_n: usize) -> usize {
        if self.master.len() >= 1_750_000 {
            paper_n
        } else {
            (paper_n as f64 / 1_750_000.0 * self.master.len() as f64).round() as usize
        }
    }
}

/// Times a closure, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let started = Instant::now();
    let value = f();
    (value, started.elapsed())
}

/// Seconds with millisecond resolution, for table cells.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// A minimal fixed-width table printer for experiment output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["|D|", "time(s)"]);
        t.row(vec!["100000".into(), "0.123".into()]);
        t.row(vec!["1".into(), "12.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("|D|"));
        assert!(lines[2].ends_with("0.123"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_bad_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn quick_master_scales_paper_sizes() {
        let w = MasterWorkload::generate(true);
        assert_eq!(w.master().len(), 100_000);
        assert_eq!(w.scale(1_750_000), 100_000);
        assert_eq!(w.scale(875_000), 50_000);
        let s = w.sample(1_000);
        assert_eq!(s.len(), 1_000);
    }
}
