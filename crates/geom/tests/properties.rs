//! Property-based tests for the geometry substrate. Exactness here is
//! load-bearing: the DP's optimality proofs compare `u128` costs for
//! strict minimality, and every upper layer assumes quadrants partition
//! their parents exactly.

use lbs_geom::{Circle, Point, Rect, Region, SplitAxis};
use proptest::prelude::*;

/// Power-of-two squares up to 2^12, anywhere in a comfortable i64 range.
fn arb_square() -> impl Strategy<Value = Rect> {
    (0u32..=12, -1_000_000i64..1_000_000, -1_000_000i64..1_000_000)
        .prop_map(|(pow, x0, y0)| Rect::square(x0, y0, 1 << pow))
}

fn arb_point_in(rect: Rect) -> impl Strategy<Value = Point> {
    (rect.x0..rect.x1, rect.y0..rect.y1).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Both split orientations partition: every point of the parent lies
    /// in exactly one half, and areas add up exactly.
    #[test]
    fn splits_partition_exactly(rect in arb_square(), seed in any::<u64>()) {
        prop_assume!(rect.width() >= 2);
        for axis in [SplitAxis::Vertical, SplitAxis::Horizontal] {
            let (low, high) = rect.split(axis);
            prop_assert_eq!(low.area() + high.area(), rect.area());
            prop_assert!(!low.intersects(&high));
            prop_assert!(rect.contains_rect(&low) && rect.contains_rect(&high));
            // Sample points deterministically from the seed.
            let mut state = seed;
            for _ in 0..32 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let px = rect.x0 + (state >> 33) as i64 % rect.width();
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let py = rect.y0 + (state >> 33) as i64 % rect.height();
                let p = Point::new(px, py);
                let n = [low, high].iter().filter(|r| r.contains(&p)).count();
                prop_assert_eq!(n, 1, "{} covered {} times", p, n);
            }
        }
    }

    /// Quadrants partition the parent and are congruent squares.
    #[test]
    fn quadrants_partition(rect in arb_square()) {
        prop_assume!(rect.width() >= 2);
        let quads = rect.quadrants();
        let total: u128 = quads.iter().map(Rect::area).sum();
        prop_assert_eq!(total, rect.area());
        for (i, a) in quads.iter().enumerate() {
            prop_assert_eq!(a.width(), rect.width() / 2);
            prop_assert_eq!(a.width(), a.height());
            for (j, b) in quads.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.intersects(b));
                }
            }
        }
    }

    /// dist2 is a symmetric, zero-iff-equal, triangle-inequality-obeying
    /// (squared) metric on sampled points.
    #[test]
    fn dist2_metric_properties(
        ax in -100_000i64..100_000, ay in -100_000i64..100_000,
        bx in -100_000i64..100_000, by in -100_000i64..100_000,
        cx in -100_000i64..100_000, cy in -100_000i64..100_000,
    ) {
        let (a, b, c) = (Point::new(ax, ay), Point::new(bx, by), Point::new(cx, cy));
        prop_assert_eq!(a.dist2(&b), b.dist2(&a));
        prop_assert_eq!(a.dist2(&a), 0);
        if a != b {
            prop_assert!(a.dist2(&b) > 0);
        }
        // Triangle inequality on the (unsquared) distances.
        prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-6);
    }

    /// Circle::covering is the tightest cover: every point is inside, and
    /// shrinking the radius by one excludes some point.
    #[test]
    fn covering_is_tight(
        center in (-1000i64..1000, -1000i64..1000),
        pts in prop::collection::vec((-1000i64..1000, -1000i64..1000), 1..20),
    ) {
        let center = Point::new(center.0, center.1);
        let points: Vec<Point> = pts.into_iter().map(|(x, y)| Point::new(x, y)).collect();
        let circle = Circle::covering(center, &points);
        for p in &points {
            prop_assert!(circle.contains(p));
        }
        if circle.radius2 > 0 {
            let smaller = Circle::from_radius2(center, circle.radius2 - 1);
            prop_assert!(points.iter().any(|p| !smaller.contains(p)), "cover not tight");
        }
    }

    /// Region containment agrees with the wrapped shape for points in and
    /// around the region.
    #[test]
    fn region_dispatch_consistent(rect in arb_square(), seed in any::<u64>()) {
        let region: Region = rect.into();
        let mut state = seed | 1;
        for _ in 0..16 {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let dx = (state >> 40) as i64 % (2 * rect.width()) - rect.width() / 2;
            let dy = (state >> 20) as i64 % (2 * rect.height()) - rect.height() / 2;
            let p = Point::new(rect.x0 + dx, rect.y0 + dy);
            prop_assert_eq!(region.contains(&p), rect.contains(&p));
        }
        prop_assert_eq!(region.area_f64(), rect.area() as f64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A point is always inside the rect returned by clamping semantics
    /// used throughout (center lies within).
    #[test]
    fn center_is_contained(rect in arb_square()) {
        prop_assert!(rect.contains(&rect.center()));
    }

    /// binary_split_axis always returns an axis whose halves are valid
    /// rects of halved extent.
    #[test]
    fn binary_axis_preserves_validity(rect in arb_square(), tall in any::<bool>()) {
        prop_assume!(rect.width() >= 4);
        let rect = if tall {
            Rect::new(rect.x0, rect.y0, rect.x0 + rect.width() / 2, rect.y1)
        } else {
            rect
        };
        let axis = rect.binary_split_axis();
        let (low, high) = rect.split(axis);
        prop_assert_eq!(low.area(), high.area());
        // Tall rects must split horizontally (back toward squares).
        if rect.height() > rect.width() {
            prop_assert_eq!(axis, SplitAxis::Horizontal);
        }
    }
}

#[test]
fn point_in_rect_strategy_sanity() {
    // Exercise the helper so it stays honest if strategies change.
    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;
    let rect = Rect::square(10, 10, 16);
    let mut runner = TestRunner::deterministic();
    for _ in 0..50 {
        let p = arb_point_in(rect).new_tree(&mut runner).unwrap().current();
        assert!(rect.contains(&p));
    }
}
