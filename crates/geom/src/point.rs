//! Integer points in the plane.

use serde::{Deserialize, Serialize};

/// A point with integer (meter) coordinates, as produced by the Mobile
/// Positioning Center in the paper's abstract model (Section II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Point {
    /// x coordinate (`locx` in the location database schema).
    pub x: i64,
    /// y coordinate (`locy` in the location database schema).
    pub y: i64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`, exact in `u128`.
    ///
    /// Used for circle containment and nearest-center queries without ever
    /// taking a square root.
    #[inline]
    pub fn dist2(&self, other: &Point) -> u128 {
        let dx = (self.x - other.x).unsigned_abs() as u128;
        let dy = (self.y - other.y).unsigned_abs() as u128;
        dx * dx + dy * dy
    }

    /// Euclidean distance as `f64`, for reporting only (never for decisions).
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        (self.dist2(other) as f64).sqrt()
    }

    /// Translates the point by `(dx, dy)`.
    #[inline]
    pub fn translated(&self, dx: i64, dy: i64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // lbs-lint: allow(location-taint, reason = "Display is the coordinate wire format for dataset files and golden corpora; every service-side egress of a Point is vetted separately by this lint at the call site")
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_is_exact_and_symmetric() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.dist2(&b), 25);
        assert_eq!(b.dist2(&a), 25);
        assert_eq!(a.dist(&b), 5.0);
    }

    #[test]
    fn dist2_handles_extreme_coordinates() {
        let a = Point::new(i64::MIN / 2, i64::MIN / 2);
        let b = Point::new(i64::MAX / 2, i64::MAX / 2);
        // Must not overflow: deltas are ~2^63, squares ~2^126, sum < 2^127.
        let d2 = a.dist2(&b);
        assert!(d2 > 0);
    }

    #[test]
    fn translation_composes() {
        let p = Point::new(5, -7);
        assert_eq!(p.translated(2, 3).translated(-2, -3), p);
    }

    #[test]
    fn display_formats_as_tuple() {
        assert_eq!(Point::new(1, 2).to_string(), "(1, 2)");
    }
}
