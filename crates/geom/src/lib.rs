//! Exact integer planar geometry for LBS anonymization.
//!
//! The paper models a geographic area as a 2-dimensional space with integer
//! coordinates (Section II-A). All geometry here is exact: coordinates are
//! `i64` meters, areas are `u128` square meters, and circle containment is
//! decided on squared distances. Exactness matters because the optimality
//! proofs of the `Bulk_dp` algorithm compare costs (sums of cloak areas) for
//! strict minimality; floating point would make "optimal" seed-dependent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circle;
mod point;
mod rect;
mod region;

pub use circle::Circle;
pub use point::Point;
pub use rect::{Rect, SplitAxis};
pub use region::Region;

/// Exact area in square meters.
///
/// A `u128` is wide enough for any cost this library computes: the largest
/// supported map is `2^20 m` on a side (area `2^40`), and costs sum one area
/// per user, so even `2^32` users stay below `2^72`.
pub type Area = u128;
