//! Axis-aligned rectangles (quadrants and semi-quadrants).

use crate::{Area, Point};
use serde::{Deserialize, Serialize};

/// Axis along which a rectangle is split into two halves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplitAxis {
    /// Split with a vertical line: produces West and East halves.
    Vertical,
    /// Split with a horizontal line: produces South and North halves.
    Horizontal,
}

/// A half-open axis-aligned rectangle `[x0, x1) × [y0, y1)`.
///
/// Half-openness makes quadrant decomposition a true partition: every point
/// of the parent belongs to exactly one child, so the location counts `d(m)`
/// of Definition 7 sum exactly (`d(m) = Σ d(m_i)`), an invariant the
/// `Bulk_dp` configuration algebra relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// West edge (inclusive).
    pub x0: i64,
    /// South edge (inclusive).
    pub y0: i64,
    /// East edge (exclusive).
    pub x1: i64,
    /// North edge (exclusive).
    pub y1: i64,
}

impl Rect {
    /// Creates a rectangle from corners; panics if it is empty or inverted.
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        assert!(x0 < x1 && y0 < y1, "empty or inverted rect ({x0},{y0},{x1},{y1})");
        Rect { x0, y0, x1, y1 }
    }

    /// A square with south-west corner `(x0, y0)` and the given side.
    pub fn square(x0: i64, y0: i64, side: i64) -> Self {
        Rect::new(x0, y0, x0 + side, y0 + side)
    }

    /// Width (east-west extent) in meters.
    #[inline]
    pub fn width(&self) -> i64 {
        self.x1 - self.x0
    }

    /// Height (north-south extent) in meters.
    #[inline]
    pub fn height(&self) -> i64 {
        self.y1 - self.y0
    }

    /// Exact area in square meters.
    #[inline]
    pub fn area(&self) -> Area {
        (self.width() as u128) * (self.height() as u128)
    }

    /// Whether `p` lies in the half-open rectangle.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.x0 <= p.x && p.x < self.x1 && self.y0 <= p.y && p.y < self.y1
    }

    /// Whether `other` is fully contained in `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x0 <= other.x0 && other.x1 <= self.x1 && self.y0 <= other.y0 && other.y1 <= self.y1
    }

    /// Whether the two rectangles share any point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Center point (rounded toward the south-west on odd extents).
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(self.x0 + self.width() / 2, self.y0 + self.height() / 2)
    }

    /// Splits into two halves along `axis`.
    ///
    /// Returns `(low, high)`: (West, East) for a vertical split, (South,
    /// North) for a horizontal one. The extent along `axis` must be even so
    /// the halves are congruent, which holds for the power-of-two maps used
    /// by the quad/binary trees.
    pub fn split(&self, axis: SplitAxis) -> (Rect, Rect) {
        match axis {
            SplitAxis::Vertical => {
                debug_assert!(self.width() % 2 == 0, "odd width split");
                let mid = self.x0 + self.width() / 2;
                (
                    Rect::new(self.x0, self.y0, mid, self.y1),
                    Rect::new(mid, self.y0, self.x1, self.y1),
                )
            }
            SplitAxis::Horizontal => {
                debug_assert!(self.height() % 2 == 0, "odd height split");
                let mid = self.y0 + self.height() / 2;
                (
                    Rect::new(self.x0, self.y0, self.x1, mid),
                    Rect::new(self.x0, mid, self.x1, self.y1),
                )
            }
        }
    }

    /// The binary-tree split axis of Section V: squares (and wide rects)
    /// split vertically into W/E semi-quadrants; tall semi-quadrants split
    /// horizontally back into squares.
    #[inline]
    pub fn binary_split_axis(&self) -> SplitAxis {
        if self.width() >= self.height() {
            SplitAxis::Vertical
        } else {
            SplitAxis::Horizontal
        }
    }

    /// The four quadrants `[NW, SW, SE, NE]` of a quad-tree split.
    pub fn quadrants(&self) -> [Rect; 4] {
        let (w, e) = self.split(SplitAxis::Vertical);
        let (sw, nw) = w.split(SplitAxis::Horizontal);
        let (se, ne) = e.split(SplitAxis::Horizontal);
        [nw, sw, se, ne]
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{})x[{},{})", self.x0, self.x1, self.y0, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_containment() {
        let r = Rect::new(0, 0, 4, 4);
        assert!(r.contains(&Point::new(0, 0)));
        assert!(r.contains(&Point::new(3, 3)));
        assert!(!r.contains(&Point::new(4, 0)));
        assert!(!r.contains(&Point::new(0, 4)));
        assert!(!r.contains(&Point::new(-1, 2)));
    }

    #[test]
    fn quadrants_partition_parent() {
        let r = Rect::square(0, 0, 8);
        let qs = r.quadrants();
        let total: Area = qs.iter().map(Rect::area).sum();
        assert_eq!(total, r.area());
        // Every point belongs to exactly one quadrant.
        for x in 0..8 {
            for y in 0..8 {
                let p = Point::new(x, y);
                let n = qs.iter().filter(|q| q.contains(&p)).count();
                assert_eq!(n, 1, "point {p} covered {n} times");
            }
        }
    }

    #[test]
    fn quadrant_order_is_nw_sw_se_ne() {
        let [nw, sw, se, ne] = Rect::square(0, 0, 4).quadrants();
        assert_eq!(nw, Rect::new(0, 2, 2, 4));
        assert_eq!(sw, Rect::new(0, 0, 2, 2));
        assert_eq!(se, Rect::new(2, 0, 4, 2));
        assert_eq!(ne, Rect::new(2, 2, 4, 4));
    }

    #[test]
    fn binary_split_alternates_square_semi_square() {
        let sq = Rect::square(0, 0, 8);
        assert_eq!(sq.binary_split_axis(), SplitAxis::Vertical);
        let (w, _) = sq.split(SplitAxis::Vertical);
        assert_eq!(w.binary_split_axis(), SplitAxis::Horizontal);
        let (s, _) = w.split(SplitAxis::Horizontal);
        assert_eq!(s.width(), s.height(), "grandchild is square again");
    }

    #[test]
    fn intersects_and_contains_rect() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 2, 6, 6);
        let c = Rect::new(4, 0, 8, 4);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c), "touching edges do not intersect (half-open)");
        assert!(a.contains_rect(&Rect::new(1, 1, 3, 3)));
        assert!(!a.contains_rect(&b));
    }

    #[test]
    #[should_panic(expected = "empty or inverted")]
    fn empty_rect_rejected() {
        let _ = Rect::new(3, 0, 3, 5);
    }

    #[test]
    fn area_of_large_map_is_exact() {
        let side = 1 << 20;
        let r = Rect::square(0, 0, side);
        assert_eq!(r.area(), 1u128 << 40);
    }
}
