//! Circles with exact squared-radius containment.

use crate::Point;
use serde::{Deserialize, Serialize};

/// A closed disk, stored as a center and a *squared* radius.
///
/// Circular cloaks appear in the paper's Theorem 1 (optimal policy-aware
/// anonymization with circles centered at a fixed set of points is
/// NP-complete) and in the k-reciprocity breach example of Figure 6(b).
/// Storing `radius²` keeps containment exact for integer points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Circle {
    /// Center of the disk.
    pub center: Point,
    /// Squared radius in m².
    pub radius2: u128,
}

impl Circle {
    /// Creates a circle from a center and squared radius.
    pub const fn from_radius2(center: Point, radius2: u128) -> Self {
        Circle { center, radius2 }
    }

    /// The smallest circle centered at `center` that covers every point in
    /// `points`. Returns a zero-radius circle for an empty slice.
    pub fn covering(center: Point, points: &[Point]) -> Self {
        let radius2 = points.iter().map(|p| center.dist2(p)).max().unwrap_or(0);
        Circle { center, radius2 }
    }

    /// Whether the closed disk contains `p`.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.center.dist2(p) <= self.radius2
    }

    /// Radius in meters, for reporting only.
    #[inline]
    pub fn radius(&self) -> f64 {
        (self.radius2 as f64).sqrt()
    }

    /// Area `πr²` as `f64`, for reporting and utility comparisons.
    ///
    /// Circle areas are irrational, so unlike rectangle areas they cannot be
    /// exact; circular-cloak costs in this library are therefore compared on
    /// `radius2` (which orders identically to area for disks).
    #[inline]
    pub fn area_f64(&self) -> f64 {
        std::f64::consts::PI * self.radius2 as f64
    }
}

impl std::fmt::Display for Circle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "circle(c={}, r={:.1})", self.center, self.radius())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_is_closed() {
        let c = Circle::from_radius2(Point::new(0, 0), 25);
        assert!(c.contains(&Point::new(3, 4)), "boundary point included");
        assert!(c.contains(&Point::new(0, 0)));
        assert!(!c.contains(&Point::new(4, 4)));
    }

    #[test]
    fn covering_picks_farthest_point() {
        let pts = [Point::new(1, 0), Point::new(0, 7), Point::new(-2, -2)];
        let c = Circle::covering(Point::new(0, 0), &pts);
        assert_eq!(c.radius2, 49);
        assert!(pts.iter().all(|p| c.contains(p)));
    }

    #[test]
    fn covering_empty_is_degenerate() {
        let c = Circle::covering(Point::new(5, 5), &[]);
        assert_eq!(c.radius2, 0);
        assert!(c.contains(&Point::new(5, 5)));
        assert!(!c.contains(&Point::new(5, 6)));
    }

    #[test]
    fn area_orders_with_radius2() {
        let small = Circle::from_radius2(Point::new(0, 0), 10);
        let big = Circle::from_radius2(Point::new(9, 9), 11);
        assert!(small.area_f64() < big.area_f64());
    }
}
