//! Cloak regions: the connected, closed regions of Definition 2.

use crate::{Circle, Point, Rect};
use serde::{Deserialize, Serialize};

/// A cloak region as used in anonymized requests (Definition 2).
///
/// The paper's anonymization algorithms draw cloaks from a family `C` of
/// candidate regions; the two families studied are axis-aligned rectangles
/// (quad-tree quadrants and semi-quadrants) and circles centered at a fixed
/// point set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// A rectangular cloak (quadrant or semi-quadrant).
    Rect(Rect),
    /// A circular cloak.
    Circle(Circle),
}

impl Region {
    /// Whether the region contains `p` — the masking condition of
    /// Definition 3 is `loc(SR) ∈ reg(AR)`.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        match self {
            Region::Rect(r) => r.contains(p),
            Region::Circle(c) => c.contains(p),
        }
    }

    /// Area as `f64` for utility reporting across mixed cloak families.
    ///
    /// Exact `u128` rectangle costs are available through
    /// [`Region::rect`] + [`Rect::area`]; this method exists for plots
    /// and summaries that mix rectangles and circles.
    #[inline]
    pub fn area_f64(&self) -> f64 {
        match self {
            Region::Rect(r) => r.area() as f64,
            Region::Circle(c) => c.area_f64(),
        }
    }

    /// Returns the rectangle if this region is rectangular.
    #[inline]
    pub fn rect(&self) -> Option<&Rect> {
        match self {
            Region::Rect(r) => Some(r),
            Region::Circle(_) => None,
        }
    }

    /// Returns the circle if this region is circular.
    #[inline]
    pub fn circle(&self) -> Option<&Circle> {
        match self {
            Region::Circle(c) => Some(c),
            Region::Rect(_) => None,
        }
    }
}

impl From<Rect> for Region {
    fn from(r: Rect) -> Self {
        Region::Rect(r)
    }
}

impl From<Circle> for Region {
    fn from(c: Circle) -> Self {
        Region::Circle(c)
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Rect(r) => write!(f, "{r}"),
            Region::Circle(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_matches_inner_type() {
        let r: Region = Rect::new(0, 0, 2, 3).into();
        let c: Region = Circle::from_radius2(Point::new(0, 0), 4).into();
        assert!(r.contains(&Point::new(1, 2)));
        assert!(!r.contains(&Point::new(2, 2)));
        assert!(c.contains(&Point::new(0, 2)));
        assert!(!c.contains(&Point::new(2, 2)));
        assert_eq!(r.area_f64(), 6.0);
        assert!(r.rect().is_some() && r.circle().is_none());
        assert!(c.circle().is_some() && c.rect().is_none());
    }
}
