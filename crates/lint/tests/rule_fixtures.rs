//! Deliberately seeded violations: every lint must fire with the correct
//! name, file, line and column — and every suppression/exemption channel
//! must silence exactly what it claims to.
//!
//! Fixture sources live in raw string literals, which the scanner treats
//! as opaque — so this file itself stays clean under the workspace scan.

use lbs_lint::{lint_source, LintReport, Violation};

/// Lints a fixture as library code of `lbs-core`.
fn lint_lib(src: &str) -> LintReport {
    lint_source("crates/core/src/fixture.rs", src)
}

/// `(lint, line, col)` triples, sorted by the report itself.
fn hits(report: &LintReport) -> Vec<(&str, u32, u32)> {
    report.violations.iter().map(|v| (v.lint.as_str(), v.line, v.col)).collect()
}

fn the_only(report: &LintReport) -> &Violation {
    assert_eq!(report.violations.len(), 1, "expected exactly one finding: {report:?}");
    &report.violations[0]
}

#[test]
fn unwrap_and_expect_fire_with_exact_spans() {
    let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\nfn g(x: Option<u8>) -> u8 {\n    x.expect(\"msg\")\n}\n";
    let report = lint_lib(src);
    assert_eq!(
        hits(&report),
        [("no-unwrap-in-lib", 2, 7), ("no-unwrap-in-lib", 5, 7)],
        "{report:?}"
    );
    assert_eq!(report.errors(), 2);
}

#[test]
fn unwrap_as_an_ordinary_identifier_does_not_fire() {
    // Not preceded by `.`/`::` or not called: a fn named unwrap, a path
    // mention in a doc string, etc.
    let src =
        "fn unwrap() {}\nfn caller() { unwrap(); }\nconst HELP: &str = \"call .unwrap() never\";\n";
    assert!(lint_lib(src).violations.is_empty());
}

#[test]
fn panic_family_macros_fire() {
    let src = "fn f() { panic!(\"boom\") }\nfn g() { unreachable!() }\nfn h() { todo!() }\n";
    let report = lint_lib(src);
    let lints: Vec<&str> = report.violations.iter().map(|v| v.lint.as_str()).collect();
    assert_eq!(lints, ["no-panic-in-lib"; 3]);
    assert_eq!(report.violations[0].line, 1);
}

#[test]
fn unseeded_rng_fires_even_in_tests_and_bins() {
    let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
    for path in
        ["crates/core/src/fixture.rs", "crates/core/tests/fixture.rs", "crates/cli/src/bin/fx.rs"]
    {
        let report = lint_source(path, src);
        assert_eq!(the_only(&report).lint, "no-unseeded-rng", "path {path}");
    }
    let report = lint_lib("fn g() { let r = StdRng::from_entropy(); }\n");
    assert_eq!(the_only(&report).lint, "no-unseeded-rng");
}

#[test]
fn raw_thread_spawn_fires_outside_lbs_parallel_only() {
    let src = "fn f() { std::thread::spawn(|| {}); }\n";
    let report = lint_lib(src);
    assert_eq!(the_only(&report).lint, "no-raw-thread-spawn");
    // lbs-parallel owns thread creation; test code may spawn helpers.
    assert!(lint_source("crates/parallel/src/engine.rs", src).violations.is_empty());
    assert!(lint_source("crates/core/tests/helper.rs", src).violations.is_empty());
}

#[test]
fn wall_clock_fires_outside_metrics_and_bench_only() {
    let src = "fn f() { let t = Instant::now(); }\nfn g() { let s = SystemTime::now(); }\n";
    let report = lint_lib(src);
    assert_eq!(hits(&report), [("no-wall-clock-in-dp", 1, 18), ("no-wall-clock-in-dp", 2, 18)]);
    assert!(lint_source(
        "crates/metrics/src/lib.rs",
        "fn f() { Instant::now(); }\n#![forbid(unsafe_code)]"
    )
    .violations
    .iter()
    .all(|v| v.lint != "no-wall-clock-in-dp"));
    assert!(lint_source("crates/bench/src/run.rs", src).violations.is_empty());
}

#[test]
fn wall_clock_in_bench_cases_fires_in_the_cases_module_only() {
    let src = "fn case() { let t = Instant::now(); }\nfn case2() { let s = SystemTime::now(); }\n";
    let report = lint_source("crates/bench/src/cases.rs", src);
    assert_eq!(
        hits(&report),
        [("no-wall-clock-in-bench-cases", 1, 21), ("no-wall-clock-in-bench-cases", 2, 22)],
        "{report:?}"
    );
    assert_eq!(report.errors(), 2);
    // The harness timer itself lives in suite.rs — exempt, as is the
    // rest of the bench crate.
    assert!(lint_source("crates/bench/src/suite.rs", src).violations.is_empty());
    assert!(lint_source("crates/bench/src/lib.rs", src.trim_end())
        .violations
        .iter()
        .all(|v| v.lint != "no-wall-clock-in-bench-cases"));
    // A cases/ submodule is covered too.
    let report = lint_source("crates/bench/src/cases/micro.rs", src);
    assert!(report.violations.iter().all(|v| v.lint == "no-wall-clock-in-bench-cases"));
    assert_eq!(report.errors(), 2);
    // Other crates' wall-clock reads are no-wall-clock-in-dp territory;
    // this rule never fires there, even for files named cases.rs.
    let report = lint_source("crates/core/src/cases.rs", src);
    assert!(report.violations.iter().all(|v| v.lint == "no-wall-clock-in-dp"), "{report:?}");
}

#[test]
fn wall_clock_in_bench_cases_respects_reasoned_pragmas() {
    let src = "fn case() {\n    // lbs-lint: allow(no-wall-clock-in-bench-cases, reason = \"one-off drift probe\")\n    let t = Instant::now();\n}\n";
    let report = lint_source("crates/bench/src/cases.rs", src);
    assert_eq!(report.errors(), 0, "{report:?}");
}

#[test]
fn unchecked_io_in_runtime_fires_on_io_results_in_the_runtime_crate_only() {
    let src = "fn f(p: &std::path::Path) {\n    let mut file = File::create(p).unwrap();\n    file.write_all(b\"frame\").expect(\"boom\");\n    Some(1).unwrap();\n}\n";
    let report = lint_source("crates/runtime/src/wal.rs", src);
    let io: Vec<u32> = report
        .violations
        .iter()
        .filter(|v| v.lint == "no-unchecked-io-in-runtime")
        .map(|v| v.line)
        .collect();
    // The io-fed unwrap/expect fire; the plain Option unwrap on line 4
    // trips only no-unwrap-in-lib (the `;` bounds the backward scan).
    assert_eq!(io, [2, 3], "{report:?}");
    let plain = report.violations.iter().filter(|v| v.lint == "no-unwrap-in-lib").count();
    assert_eq!(plain, 3, "{report:?}");
    // Outside lbs-runtime the same source never trips the io lint.
    let other = lint_source("crates/core/src/fixture.rs", src);
    assert!(other.violations.iter().all(|v| v.lint != "no-unchecked-io-in-runtime"));
    // Runtime test code is exempt (fixtures unwrap io freely).
    let tests = lint_source("crates/runtime/tests/fixture.rs", src);
    assert!(tests.violations.iter().all(|v| v.lint != "no-unchecked-io-in-runtime"));
}

#[test]
fn raw_fs_in_runtime_fires_outside_the_storage_seam_only() {
    let src = "fn f(p: &std::path::Path) -> std::io::Result<()> {\n    let raw = std::fs::read(p)?;\n    let file = File::create(p)?;\n    let opts = OpenOptions::new();\n    Ok(())\n}\n";
    let report = lint_source("crates/runtime/src/wal.rs", src);
    let raw: Vec<u32> = report
        .violations
        .iter()
        .filter(|v| v.lint == "no-raw-fs-in-runtime")
        .map(|v| v.line)
        .collect();
    assert_eq!(raw, [2, 3, 4], "{report:?}");
    // storage.rs is the seam's sanctioned real-fs implementation.
    let seam = lint_source("crates/runtime/src/storage.rs", src);
    assert!(seam.violations.iter().all(|v| v.lint != "no-raw-fs-in-runtime"), "{seam:?}");
    // Other crates may touch the filesystem directly (the CLI, tests).
    let other = lint_source("crates/cli/src/commands.rs", src);
    assert!(other.violations.iter().all(|v| v.lint != "no-raw-fs-in-runtime"), "{other:?}");
    // Runtime test code tears real files on purpose.
    let tests = lint_source("crates/runtime/tests/fixture.rs", src);
    assert!(tests.violations.iter().all(|v| v.lint != "no-raw-fs-in-runtime"), "{tests:?}");
    // Inline #[cfg(test)] modules inside runtime lib files are exempt too.
    let inline = format!("#[cfg(test)]\nmod tests {{\n{src}}}\n");
    let inline_report = lint_source("crates/runtime/src/wal.rs", &inline);
    assert!(
        inline_report.violations.iter().all(|v| v.lint != "no-raw-fs-in-runtime"),
        "{inline_report:?}"
    );
    // An identifier merely *containing* File (the seam's own StorageFile)
    // never fires.
    let seam_use = "fn g(s: &dyn StorageBackend) { let h: Box<dyn StorageFile> = s.create(std::path::Path::new(\"x\")).unwrap(); }\n";
    let report = lint_source("crates/runtime/src/checkpoint.rs", seam_use);
    assert!(report.violations.iter().all(|v| v.lint != "no-raw-fs-in-runtime"), "{report:?}");
}

#[test]
fn float_eq_fires_on_either_side_and_on_negated_literals() {
    let src = "fn f(x: f64) -> bool { x == 1.0 }\nfn g(x: f64) -> bool { 2.5 != x }\nfn h(x: f64) -> bool { x == -0.5 }\nfn i(x: u32) -> bool { x == 1 }\n";
    let report = lint_lib(src);
    assert_eq!(
        hits(&report),
        [("no-float-eq", 1, 26), ("no-float-eq", 2, 28), ("no-float-eq", 3, 26)]
    );
}

#[test]
fn println_family_fires_in_lib_but_not_bin() {
    let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); dbg!(1); }\n";
    let report = lint_lib(src);
    assert_eq!(report.violations.len(), 3);
    assert!(report.violations.iter().all(|v| v.lint == "no-println-in-lib"));
    assert!(lint_source("crates/cli/src/bin/lbs.rs", src).violations.is_empty());
}

#[test]
fn hashmap_in_serialized_type_fires_and_serde_skip_shields() {
    let src = r#"
#[derive(Debug, Serialize)]
struct Out {
    good: BTreeMap<u32, u32>,
    bad: HashMap<u32, u32>,
    #[serde(skip)]
    shielded: HashMap<u32, u32>,
    also_bad: HashSet<u32>,
}
struct NotSerialized {
    fine: HashMap<u32, u32>,
}
"#;
    let report = lint_lib(src);
    assert_eq!(
        hits(&report),
        [("no-hashmap-in-serialized-output", 5, 10), ("no-hashmap-in-serialized-output", 8, 15)],
        "{report:?}"
    );
}

#[test]
fn missing_forbid_unsafe_header_fires_on_crate_roots_only() {
    let bare = "pub fn f() {}\n";
    let report = lint_source("crates/core/src/lib.rs", bare);
    assert_eq!(the_only(&report).lint, "forbid-unsafe-header");
    assert_eq!((report.violations[0].line, report.violations[0].col), (1, 1));
    // Present header: clean. Non-root lib files: exempt.
    let ok = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(lint_source("crates/core/src/lib.rs", ok).violations.is_empty());
    assert!(lint_lib(bare).violations.is_empty());
}

#[test]
fn cfg_test_regions_inside_lib_files_are_exempt() {
    let src = "pub fn lib_code() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n        panic!(\"fine in tests\");\n    }\n}\n";
    assert!(lint_lib(src).violations.is_empty(), "{:?}", lint_lib(src));
    // …but the same calls above the test module still fire.
    let src2 = format!("pub fn bad() {{ Some(1).unwrap(); }}\n{src}");
    let report = lint_lib(&src2);
    assert_eq!(the_only(&report).lint, "no-unwrap-in-lib");
    assert_eq!(report.violations[0].line, 1);
}

#[test]
fn same_line_pragma_suppresses_that_line_only() {
    let src = r#"
fn f(x: Option<u8>) -> u8 {
    // lbs-lint: allow(no-unwrap-in-lib, reason = "checked by caller")
    x.unwrap()
}
fn g(x: Option<u8>) -> u8 {
    x.unwrap()
}
"#;
    let report = lint_lib(src);
    assert_eq!(report.suppressed, 1);
    let v = the_only(&report);
    assert_eq!((v.lint.as_str(), v.line), ("no-unwrap-in-lib", 7));
}

#[test]
fn standalone_pragma_covers_a_multi_line_statement() {
    let src = r#"
fn f(v: &[u32]) -> u32 {
    // lbs-lint: allow(no-unwrap-in-lib, reason = "v is nonempty by construction")
    v.iter()
        .copied()
        .max()
        .unwrap()
}
"#;
    let report = lint_lib(src);
    assert!(report.violations.is_empty(), "{report:?}");
    assert_eq!(report.suppressed, 1);
}

#[test]
fn one_pragma_may_name_several_lints() {
    let src = r#"
fn f() {
    // lbs-lint: allow(no-println-in-lib, no-unwrap-in-lib, reason = "debug shim behind a feature gate")
    println!("{}", std::env::var("X").unwrap());
}
"#;
    let report = lint_lib(src);
    assert!(report.violations.is_empty(), "{report:?}");
    assert_eq!(report.suppressed, 2);
}

#[test]
fn pragma_without_reason_is_a_malformed_pragma_error() {
    let src = "fn f(x: Option<u8>) -> u8 {\n    // lbs-lint: allow(no-unwrap-in-lib)\n    x.unwrap()\n}\n";
    let report = lint_lib(src);
    let lints: Vec<&str> = report.violations.iter().map(|v| v.lint.as_str()).collect();
    // The pragma is rejected, so the unwrap also still fires.
    assert!(lints.contains(&"malformed-pragma"), "{report:?}");
    assert!(lints.contains(&"no-unwrap-in-lib"), "{report:?}");
    assert_eq!(report.suppressed, 0);
    assert!(report.errors() >= 2);
}

#[test]
fn pragma_with_empty_reason_is_rejected() {
    let src = "// lbs-lint: allow(no-unwrap-in-lib, reason = \"  \")\nfn f() {}\n";
    let report = lint_lib(src);
    assert_eq!(the_only(&report).lint, "malformed-pragma");
}

#[test]
fn pragma_naming_an_unknown_lint_is_rejected() {
    let src = "// lbs-lint: allow(no-such-lint, reason = \"typo\")\nfn f() {}\n";
    let report = lint_lib(src);
    let v = the_only(&report);
    assert_eq!(v.lint, "malformed-pragma");
    assert!(v.message.contains("no-such-lint"), "{}", v.message);
}

#[test]
fn unused_suppression_is_a_warning_not_an_error() {
    let src =
        "// lbs-lint: allow(no-unwrap-in-lib, reason = \"nothing here unwraps\")\nfn f() {}\n";
    let report = lint_lib(src);
    let v = the_only(&report);
    assert_eq!((v.lint.as_str(), v.severity.as_str()), ("unused-suppression", "warn"));
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 1);
}

#[test]
fn pragma_inside_a_macro_body_still_applies() {
    let src = r#"
macro_rules! table {
    () => {{
        // lbs-lint: allow(no-unwrap-in-lib, reason = "macro expands in checked contexts only")
        VALUES.first().unwrap()
    }};
}
"#;
    let report = lint_lib(src);
    assert!(report.violations.is_empty(), "{report:?}");
    assert_eq!(report.suppressed, 1);
}

#[test]
fn doc_comments_cannot_carry_pragmas() {
    // A pragma-shaped doc comment is ignored entirely (neither applied
    // nor reported), so the unwrap underneath still fires.
    let src = "/// lbs-lint: allow(no-unwrap-in-lib, reason = \"docs are not pragmas\")\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let report = lint_lib(src);
    assert_eq!(the_only(&report).lint, "no-unwrap-in-lib");
    assert_eq!(report.suppressed, 0);
}

#[test]
fn pragma_for_the_wrong_lint_does_not_suppress_and_is_flagged_unused() {
    let src = r#"
fn f() {
    // lbs-lint: allow(no-println-in-lib, reason = "wrong lint named here")
    Some(1).unwrap();
}
"#;
    let report = lint_lib(src);
    let lints: Vec<&str> = report.violations.iter().map(|v| v.lint.as_str()).collect();
    assert!(lints.contains(&"no-unwrap-in-lib"));
    assert!(lints.contains(&"unused-suppression"));
}

#[test]
fn fixture_patterns_inside_string_literals_never_fire() {
    let src = r##"
pub const EXAMPLE: &str = "x.unwrap(); panic!(); thread_rng(); Instant::now()";
pub const RAW: &str = r#"SystemTime::now() println!("nope")"#;
"##;
    assert!(lint_lib(src).violations.is_empty());
}

#[test]
fn json_output_carries_names_paths_and_spans() {
    let report = lint_lib("fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
    let json = report.to_json().expect("serializable");
    for needle in [
        "\"lint\": \"no-unwrap-in-lib\"",
        "\"path\": \"crates/core/src/fixture.rs\"",
        "\"line\": 1",
        "\"severity\": \"error\"",
        "\"files_scanned\": 1",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
}
