//! The item parser (and the whole deep pipeline above it) must never
//! panic and must terminate on arbitrary byte soup: the linter runs over
//! every file in the workspace, including ones mid-edit, so a crash in
//! the analyzer is a CI outage.
//!
//! Three generators: arbitrary bytes (lossily decoded), arbitrary
//! unicode, and Rust-shaped fragment soup — concatenated syntax shards
//! that reach deep parser paths (unbalanced braces, truncated generics,
//! stray pragmas) uniform randomness essentially never forms. The
//! vendored proptest shim does not shrink, so a failing fragment soup is
//! reduced by a greedy 1-minimal pass (the `shrink_db` pattern from
//! `tests/property_based.rs`) before it is reported: re-test with each
//! fragment removed, keep every removal that still fails, repeat until
//! no single removal fails.

use lbs_lint::{lint_source, lint_sources_deep, PassSet};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The workspace config shape, so fuzzing exercises the same pass
/// wiring `--deep` uses.
const CONFIG: &str = r#"
[panic-reachability]
entry-points = ["serve_fixture"]

[location-taint]
value-sources = ["Point"]
taint-methods = ["clone"]
sink-macros = ["format"]
sanitizer-calls = ["cloak"]

[determinism-taint]
carrier-sources = ["HashMap"]
order-methods = ["iter"]
sink-macros = ["format"]
"#;

/// Runs the full pipeline; returns whether it completed without panicking.
fn survives(src: &str) -> bool {
    let src = src.to_string();
    catch_unwind(AssertUnwindSafe(|| {
        let files = vec![("crates/core/src/fuzz.rs".to_string(), src.clone())];
        let _ = lint_sources_deep(&files, CONFIG, &PassSet::all()).expect("config is valid");
        let _ = lint_source("crates/core/src/fuzz.rs", &src);
    }))
    .is_ok()
}

/// Rust-shaped fragments: enough syntax shards to form items, generics,
/// raw strings, pragma comments, and every panic-site shape the deep
/// passes inspect.
const FRAGMENTS: &[&str] = &[
    "fn ",
    "pub ",
    "impl ",
    "trait ",
    "struct ",
    "enum ",
    "mod ",
    "use ",
    "f",
    "X",
    "self",
    "Self::",
    "x.unwrap()",
    "x.expect(\"m\")",
    "v[i]",
    "v[0]",
    "<",
    ">",
    "<T: Ord>",
    "'a",
    "::",
    "->",
    "=>",
    "#[derive(Debug)]",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "=",
    ".",
    "&mut ",
    "let x = ",
    "match y ",
    "for (k, v) in m.iter() ",
    "if let Some(p) = q ",
    "format!(\"{x:?}\")",
    "\"str {cap} \"",
    "r#\"raw \"# ",
    "// comment\n",
    "// lbs-lint: allow(location-taint, reason = \"r\")\n",
    "// lbs-lint: allow-item(panic-reachability, reason = \"r\")\n",
    "// lbs-lint: allow(nonsense)\n",
    "/* block",
    "*/",
    "\n",
    " ",
    "b'\\x7f'",
    "0xFF",
    "1_000",
    "..",
    "..=",
    "%",
    "!",
    "panic!(\"x\")",
];

fn soup(indices: &[usize]) -> String {
    indices.iter().map(|&i| FRAGMENTS[i % FRAGMENTS.len()]).collect()
}

/// Greedy 1-minimal reduction: drop any fragment whose removal keeps the
/// panic alive, rescanning from the start after each successful drop.
fn shrink_indices(indices: &[usize]) -> Vec<usize> {
    let mut cur = indices.to_vec();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < cur.len() {
            let mut candidate = cur.clone();
            candidate.remove(i);
            if !survives(&soup(&candidate)) {
                cur = candidate;
                shrunk = true;
                // Do not advance: the element now at `i` is untested.
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deep_lint_survives_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255, 0..400)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        prop_assert!(survives(&src), "deep lint panicked on bytes: {src:?}");
    }

    #[test]
    fn deep_lint_survives_arbitrary_unicode(
        points in prop::collection::vec(0u32..0x11_0000, 0..400)
    ) {
        let src: String = points.iter().filter_map(|&c| char::from_u32(c)).collect();
        prop_assert!(survives(&src), "deep lint panicked on unicode: {src:?}");
    }

    #[test]
    fn deep_lint_survives_rust_shaped_fragment_soup(
        indices in prop::collection::vec(0usize..64, 0..60)
    ) {
        if !survives(&soup(&indices)) {
            let minimal = shrink_indices(&indices);
            prop_assert!(
                false,
                "deep lint panicked; 1-minimal reproducer ({} fragments): {:?}",
                minimal.len(),
                soup(&minimal)
            );
        }
    }
}
