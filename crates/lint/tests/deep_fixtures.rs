//! Deep-pass fixture corpus: at least one true positive and one true
//! negative per interprocedural lint, plus the suppression channels the
//! deep passes add (sanctioned sinks, `allow-item`, pass toggles).
//!
//! Fixture sources live in raw string literals, which the scanner treats
//! as opaque — so this file itself stays clean under the workspace scan.

use lbs_lint::{lint_sources_deep, LintReport, PassSet};

/// Minimal `lint-taint.toml` for fixtures: one entry point, `Point` as
/// the tainted value type, `HashMap` as the nondeterministic carrier.
const CONFIG: &str = r#"
[panic-reachability]
entry-points = ["serve_fixture"]

[location-taint]
value-sources = ["Point"]
taint-methods = ["clone"]
sink-macros = ["format", "println"]
sanitizer-calls = ["cloak"]

[determinism-taint]
carrier-sources = ["HashMap"]
order-methods = ["iter", "keys"]
sink-macros = ["format"]
"#;

/// Deep-lints one fixture as library code of `lbs-core`.
fn deep(src: &str) -> LintReport {
    let files = vec![("crates/core/src/fixture.rs".to_string(), src.to_string())];
    lint_sources_deep(&files, CONFIG, &PassSet::all()).expect("fixture config parses")
}

fn hits(report: &LintReport) -> Vec<(&str, u32, u32)> {
    report.violations.iter().map(|v| (v.lint.as_str(), v.line, v.col)).collect()
}

fn only_lint<'r>(report: &'r LintReport, lint: &str) -> &'r lbs_lint::Violation {
    let matching: Vec<_> = report.violations.iter().filter(|v| v.lint == lint).collect();
    assert_eq!(matching.len(), 1, "expected exactly one {lint} finding: {report:?}");
    matching[0]
}

// ---------------------------------------------------------------- panic

#[test]
fn panic_reachability_true_positive_with_trace() {
    let src = "pub fn serve_fixture(v: &[u64]) -> u64 {\n\
               \x20   helper(v)\n\
               }\n\
               fn helper(v: &[u64]) -> u64 {\n\
               \x20   v.first().copied().unwrap()\n\
               }\n";
    let report = deep(src);
    let v = only_lint(&report, "panic-reachability");
    assert_eq!((v.line, v.col), (5, 24), "{report:?}");
    assert!(v.message.contains("`.unwrap()`"), "{}", v.message);
    assert!(v.message.contains("serve_fixture"), "{}", v.message);
    // The trace walks entry → callee with call-site lines.
    assert!(v.trace[0].contains("entry point `serve_fixture`"), "{:?}", v.trace);
    assert!(v.trace[1].contains("calls `helper`") && v.trace[1].contains(":2"), "{:?}", v.trace);
}

#[test]
fn panic_reachability_true_negative_guarded_and_unreachable() {
    // Guarded indexing (receiver length-checked in the same fn) plus an
    // unwrap in a function nothing reachable calls: both stay silent.
    let src = "pub fn serve_fixture(v: &[u64], i: usize) -> u64 {\n\
               \x20   if i < v.len() { v[i] } else { 0 }\n\
               }\n\
               fn dead_code(x: Option<u8>) -> u8 {\n\
               \x20   x.unwrap()\n\
               }\n";
    let report = deep(src);
    assert!(!report.violations.iter().any(|v| v.lint == "panic-reachability"), "{report:?}");
}

// ------------------------------------------------------------- location

#[test]
fn location_taint_true_positive_direct_format_capture() {
    // `{p:?}` is an implicit format capture — no ident argument exists,
    // so this also locks in capture parsing inside string literals.
    let src = "pub fn report(p: Point) -> String {\n\
               \x20   format!(\"at {p:?}\")\n\
               }\n";
    let report = deep(src);
    let v = only_lint(&report, "location-taint");
    assert_eq!((v.line, v.col), (2, 5), "{report:?}");
    assert!(v.message.contains("format"), "{}", v.message);
}

#[test]
fn location_taint_true_positive_interprocedural_with_trace() {
    // The sink is one hop away: the finding lands at the call site and
    // carries the callee's parameter-to-sink chain as the trace.
    let src = "pub fn outer(p: Point) -> String {\n\
               \x20   stringify_loc(p)\n\
               }\n\
               fn stringify_loc<T: std::fmt::Debug>(x: T) -> String {\n\
               \x20   format!(\"{x:?}\")\n\
               }\n";
    let report = deep(src);
    let v = only_lint(&report, "location-taint");
    assert_eq!(v.line, 2, "{report:?}");
    assert!(v.message.contains("stringify_loc"), "{}", v.message);
    assert!(
        v.trace.iter().any(|t| t.contains("parameter `x`") && t.contains("format")),
        "{:?}",
        v.trace
    );
}

#[test]
fn location_taint_true_negative_through_sanitizer() {
    let src = "pub fn report(p: Point) -> String {\n\
               \x20   let r = cloak(p);\n\
               \x20   format!(\"cloaked to {r:?}\")\n\
               }\n";
    let report = deep(src);
    assert!(!report.violations.iter().any(|v| v.lint == "location-taint"), "{report:?}");
}

// ---------------------------------------------------------- determinism

#[test]
fn determinism_taint_true_positive_hashmap_iteration_order() {
    let src = "pub fn digest(m: &HashMap<u64, u64>) -> String {\n\
               \x20   let mut out = String::new();\n\
               \x20   for (k, v) in m.iter() {\n\
               \x20       out.push_str(&format!(\"{k}={v};\"));\n\
               \x20   }\n\
               \x20   out\n\
               }\n";
    let report = deep(src);
    let v = only_lint(&report, "determinism-taint");
    assert_eq!(v.line, 4, "{report:?}");
}

#[test]
fn determinism_taint_true_negative_btreemap() {
    // Identical shape over an ordered map: silent.
    let src = "pub fn digest(m: &BTreeMap<u64, u64>) -> String {\n\
               \x20   let mut out = String::new();\n\
               \x20   for (k, v) in m.iter() {\n\
               \x20       out.push_str(&format!(\"{k}={v};\"));\n\
               \x20   }\n\
               \x20   out\n\
               }\n";
    let report = deep(src);
    assert!(!report.violations.iter().any(|v| v.lint == "determinism-taint"), "{report:?}");
}

// ---------------------------------------------------- suppression paths

#[test]
fn sanctioned_sink_pragma_clears_callers_and_counts_as_used() {
    // The sink itself sees only parameter taint (no direct source), so
    // the only visible finding without the pragma is at the caller. The
    // pragma sanctions the boundary: callers go clean AND the pragma
    // registers as used (no unused-suppression).
    let src = "pub fn outer(p: Point) -> String {\n\
               \x20   stringify_loc(p)\n\
               }\n\
               fn stringify_loc<T: std::fmt::Debug>(x: T) -> String {\n\
               \x20   // lbs-lint: allow(location-taint, reason = \"operator log inside the trust boundary\")\n\
               \x20   format!(\"{x:?}\")\n\
               }\n";
    let report = deep(src);
    assert_eq!(hits(&report), [] as [(&str, u32, u32); 0], "{report:?}");
    assert!(report.suppressed >= 1, "{report:?}");
}

#[test]
fn allow_item_covers_a_whole_function_body() {
    let src = "pub fn serve_fixture(v: &[u64]) -> u64 {\n\
               \x20   helper(v)\n\
               }\n\
               // lbs-lint: allow-item(panic-reachability, no-unwrap-in-lib, reason = \"fixture invariant\")\n\
               fn helper(v: &[u64]) -> u64 {\n\
               \x20   v.first().copied().unwrap()\n\
               }\n";
    let report = deep(src);
    assert_eq!(hits(&report), [] as [(&str, u32, u32); 0], "{report:?}");
    assert!(report.suppressed >= 1, "{report:?}");
}

#[test]
fn pragma_for_non_firing_deep_rule_is_flagged_unused() {
    let src = "// lbs-lint: allow(determinism-taint, reason = \"nothing here\")\n\
               pub fn quiet() -> u64 {\n\
               \x20   7\n\
               }\n";
    let report = deep(src);
    let v = only_lint(&report, "unused-suppression");
    assert_eq!(v.line, 1, "{report:?}");
}

#[test]
fn pragma_for_toggled_off_pass_is_exempt_from_unused() {
    // Same fixture, determinism pass disabled: the pragma cannot fire by
    // construction, so unused-suppression must not nag about it.
    let src = "// lbs-lint: allow(determinism-taint, reason = \"nothing here\")\n\
               pub fn quiet() -> u64 {\n\
               \x20   7\n\
               }\n";
    let files = vec![("crates/core/src/fixture.rs".to_string(), src.to_string())];
    let passes = PassSet { panic: true, location: true, determinism: false };
    let report = lint_sources_deep(&files, CONFIG, &passes).expect("config parses");
    assert_eq!(hits(&report), [] as [(&str, u32, u32); 0], "{report:?}");
}

#[test]
fn unknown_lint_name_in_pragma_is_malformed_not_tolerated() {
    let src = "// lbs-lint: allow(no-such-rule, reason = \"typo\")\n\
               pub fn quiet() -> u64 {\n\
               \x20   7\n\
               }\n";
    let report = deep(src);
    let v = only_lint(&report, "malformed-pragma");
    assert!(v.message.contains("no-such-rule"), "{}", v.message);
}

#[test]
fn invalid_config_is_a_hard_error() {
    let files = vec![("crates/core/src/lib.rs".to_string(), "pub fn f() {}\n".to_string())];
    let bad = "[panic-reachability]\nentry-points = [\"a\"]\n[mystery-section]\nx = [\"y\"]\n";
    assert!(lint_sources_deep(&files, bad, &PassSet::all()).is_err());
    let bad_key = "[location-taint]\nvalue-surces = [\"Point\"]\n";
    assert!(lint_sources_deep(&files, bad_key, &PassSet::all()).is_err());
}
