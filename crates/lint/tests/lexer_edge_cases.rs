//! Scanner edge cases: the lexer must classify every construct that could
//! otherwise make a rule misfire (strings that *mention* forbidden calls,
//! comments, lifetimes that look like chars, …).

use lbs_lint::lexer::{tokenize, TokenKind};

/// Kinds only, comments included.
fn kinds(src: &str) -> Vec<TokenKind> {
    tokenize(src).iter().map(|t| t.kind).collect()
}

/// `(kind, text)` pairs for compact assertions.
fn spell(src: &str) -> Vec<(TokenKind, String)> {
    tokenize(src).iter().map(|t| (t.kind, t.text.to_string())).collect()
}

#[test]
fn raw_strings_are_opaque() {
    // A raw string containing `.unwrap()` and a fake pragma must stay one
    // token: rules and pragma parsing never look inside string literals.
    let src =
        r###"let s = r#"x.unwrap() // lbs-lint: allow(no-unwrap-in-lib, reason = "fake")"#;"###;
    let toks = tokenize(src);
    let raws: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::RawStr).collect();
    assert_eq!(raws.len(), 1);
    assert!(raws[0].text.contains("unwrap"));
    assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    assert!(!toks.iter().any(|t| t.kind == TokenKind::LineComment));
}

#[test]
fn raw_strings_with_many_hashes_terminate_at_matching_fence() {
    let src = "r##\"inner \"# still inside\"## + r\"plain\"";
    let toks = tokenize(src);
    let raws: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::RawStr).collect();
    assert_eq!(raws.len(), 2);
    assert!(raws[0].text.contains("still inside"));
    assert_eq!(raws[1].text, "r\"plain\"");
}

#[test]
fn nested_block_comments_close_correctly() {
    let src = "/* outer /* inner */ still comment */ code";
    let toks = tokenize(src);
    assert_eq!(toks[0].kind, TokenKind::BlockComment);
    assert!(toks[0].text.ends_with("still comment */"));
    assert!(toks.iter().any(|t| t.is_ident("code")));
}

#[test]
fn block_comments_hide_forbidden_calls() {
    let src = "/* x.unwrap() */ let y = 1;";
    let toks = tokenize(src);
    assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
}

#[test]
fn lifetimes_are_not_char_literals() {
    let pairs = spell("fn f<'a>(x: &'a str) -> &'static str { x }");
    let lifetimes: Vec<_> =
        pairs.iter().filter(|(k, _)| *k == TokenKind::Lifetime).map(|(_, t)| t.clone()).collect();
    assert_eq!(lifetimes, ["'a", "'a", "'static"]);
    assert!(!pairs.iter().any(|(k, _)| *k == TokenKind::Char));
}

#[test]
fn char_literals_including_escapes_and_quotes() {
    let toks = tokenize(r"let c = 'x'; let q = '\''; let n = '\n'; let u = '\u{1F600}';");
    let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
    assert_eq!(chars.len(), 4);
    assert_eq!(chars[1].text, r"'\''");
}

#[test]
fn string_escapes_do_not_end_the_literal_early() {
    let toks = tokenize(r#"let s = "with \" escaped quote"; done"#);
    let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].text.contains("escaped quote"));
    assert!(toks.iter().any(|t| t.is_ident("done")));
}

#[test]
fn byte_strings_and_byte_chars() {
    let toks = tokenize(r##"let b = b"bytes"; let rb = br#"raw bytes"#; let c = b'q';"##);
    assert!(toks.iter().any(|t| t.kind == TokenKind::ByteStr && t.text == "b\"bytes\""));
    assert!(toks.iter().any(|t| t.kind == TokenKind::RawStr && t.text.contains("raw bytes")));
    assert!(toks.iter().any(|t| t.kind == TokenKind::Char && t.text == "b'q'"));
}

#[test]
fn float_versus_int_versus_method_call() {
    // `1.0 == x` must expose a Float for no-float-eq, but `1.max(2)` is an
    // Int followed by a method call, and `0..10` is two Ints and a range.
    let pairs = spell("let a = 1.0; let b = 1.max(2); let r = 0..10; let e = 2e3; let s = 1f64;");
    let floats: Vec<_> =
        pairs.iter().filter(|(k, _)| *k == TokenKind::Float).map(|(_, t)| t.clone()).collect();
    assert_eq!(floats, ["1.0", "2e3", "1f64"]);
    assert!(pairs.contains(&(TokenKind::Ident, "max".to_string())));
    assert!(pairs.contains(&(TokenKind::Punct, "..".to_string())));
}

#[test]
fn hex_and_underscored_literals_are_ints() {
    let pairs = spell("let m = 0xFF_u32; let b = 0b1010; let o = 0o77; let big = 1_000_000;");
    assert!(pairs.iter().all(|(k, _)| *k != TokenKind::Float));
    assert!(pairs.contains(&(TokenKind::Int, "0xFF_u32".to_string())));
}

#[test]
fn multi_char_operators_stay_single_tokens() {
    let pairs = spell("a == b != c; x :: y; p -> q; r => s; t .. u; v ..= w; n <<= 1;");
    for op in ["==", "!=", "::", "->", "=>", "..", "..=", "<<="] {
        assert!(
            pairs.contains(&(TokenKind::Punct, op.to_string())),
            "missing operator token {op:?}"
        );
    }
}

#[test]
fn line_and_col_are_one_based_and_accurate() {
    let src = "let a = 1;\n  foo.unwrap();\n";
    let toks = tokenize(src);
    let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
    assert_eq!((unwrap.line, unwrap.col), (2, 7));
}

#[test]
fn multiline_tokens_advance_line_tracking() {
    let src = "let s = \"a\nb\nc\";\nnext";
    let toks = tokenize(src);
    let next = toks.iter().find(|t| t.is_ident("next")).unwrap();
    assert_eq!(next.line, 4);
}

#[test]
fn doc_and_plain_comments_are_distinguished_by_text() {
    let toks = tokenize("/// doc\n//! inner\n// plain\nfn f() {}");
    let comments: Vec<_> =
        toks.iter().filter(|t| t.kind == TokenKind::LineComment).map(|t| t.text).collect();
    assert_eq!(comments, ["/// doc", "//! inner", "// plain"]);
}

#[test]
fn raw_identifiers_lex_as_idents() {
    let toks = tokenize("let r#match = 1; r#match");
    assert!(toks.iter().filter(|t| t.kind == TokenKind::Ident).count() >= 2);
}

#[test]
fn lexing_never_panics_on_garbage() {
    for src in ["\"unterminated", "r#\"open", "/* open", "'", "b'", "\u{0}\u{1}", "🦀🦀"] {
        let _ = tokenize(src); // must not panic
    }
    assert!(kinds("").is_empty());
}
