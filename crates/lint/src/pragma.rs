//! Suppression pragmas: `// lbs-lint: allow(<lint>, reason = "…")`.
//!
//! Grammar (inside a plain `//` line comment — doc comments are ignored):
//!
//! ```text
//! pragma  := "lbs-lint:" form "(" lints "," "reason" "=" string ")"
//! form    := "allow" | "allow-item"
//! lints   := lint-name ("," lint-name)*
//! ```
//!
//! The `reason` is mandatory and must be non-empty: every suppression in
//! the tree documents *why* the invariant provably holds at that site.
//!
//! **Scope.** An `allow` pragma trailing code on the same line
//! suppresses that line only. An `allow` alone on its line suppresses
//! the *next statement*: all lines from the following code token through
//! the token that ends it (a `;`, `,`, `{` or `}` at bracket depth
//! zero), so multi-line calls and builder chains are covered without
//! counting lines by hand.
//!
//! **`allow-item`** must stand alone on its line and suppresses the next
//! *item or block*: from the following code token through the brace that
//! closes the first `{` opened at depth zero (a whole `fn`, `impl`, or
//! loop body). It exists for interprocedural (`--deep`) findings such as
//! arena-indexing in the DP hot path, where one invariant justifies a
//! function's worth of sites; prefer plain `allow` everywhere else.

use crate::lexer::{Token, TokenKind};
use crate::registry;

/// One parsed, well-formed suppression with its effective line range.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Lints this pragma suppresses.
    pub lints: Vec<String>,
    /// The mandatory human justification.
    pub reason: String,
    /// Line the pragma comment sits on.
    pub line: u32,
    /// First suppressed line (inclusive).
    pub start_line: u32,
    /// Last suppressed line (inclusive).
    pub end_line: u32,
}

/// A pragma that could not be accepted.
#[derive(Debug, Clone)]
pub struct PragmaIssue {
    /// Line of the offending comment.
    pub line: u32,
    /// Column of the offending comment.
    pub col: u32,
    /// What is wrong.
    pub message: String,
}

/// Extracts suppressions (and issues) from a token stream.
pub fn collect(tokens: &[Token<'_>]) -> (Vec<Suppression>, Vec<PragmaIssue>) {
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut suppressions = Vec::new();
    let mut issues = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = &t.text[2..];
        // `///` and `//!` are doc comments; pragmas live in plain comments.
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let trimmed = body.trim_start();
        let Some(rest) = trimmed.strip_prefix("lbs-lint:") else {
            continue;
        };
        match parse_allow(rest) {
            Err(msg) => issues.push(PragmaIssue { line: t.line, col: t.col, message: msg }),
            Ok((item_scope, lints, reason)) => {
                let mut bad = false;
                for name in &lints {
                    if registry::find(name).is_none() {
                        issues.push(PragmaIssue {
                            line: t.line,
                            col: t.col,
                            message: format!(
                                "pragma names unknown lint {name:?} (see `lbs lint --list`)"
                            ),
                        });
                        bad = true;
                    }
                }
                if bad {
                    continue;
                }
                let (start_line, end_line) = if item_scope {
                    if code.iter().any(|c| c.line == t.line) {
                        issues.push(PragmaIssue {
                            line: t.line,
                            col: t.col,
                            message: "allow-item pragmas must stand alone on their line"
                                .to_string(),
                        });
                        continue;
                    }
                    span_for_item(t, &code)
                } else {
                    span_for(t, &code)
                };
                suppressions.push(Suppression {
                    lints,
                    reason,
                    line: t.line,
                    start_line,
                    end_line,
                });
            }
        }
    }
    (suppressions, issues)
}

/// Parses `allow(<lints>, reason = "…")` or `allow-item(…)` after the
/// `lbs-lint:` marker; the boolean is true for the item-scoped form.
fn parse_allow(rest: &str) -> Result<(bool, Vec<String>, String), String> {
    let rest = rest.trim();
    let (item_scope, inner) = if let Some(inner) = rest.strip_prefix("allow-item") {
        (true, inner.trim_start())
    } else if let Some(inner) = rest.strip_prefix("allow") {
        (false, inner.trim_start())
    } else {
        return Err(format!(
            "expected `allow(...)` or `allow-item(...)` after `lbs-lint:`, found {rest:?}"
        ));
    };
    let Some(inner) = inner.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(inner) = inner.trim_end().strip_suffix(')') else {
        return Err("unclosed `allow(` pragma (missing `)`)".to_string());
    };
    // Split at the `reason = "…"` clause.
    let Some(reason_at) = inner.find("reason") else {
        return Err("pragma is missing the mandatory `reason = \"…\"` clause".to_string());
    };
    let names_part = inner[..reason_at].trim().trim_end_matches(',');
    let reason_part = inner[reason_at + "reason".len()..].trim_start();
    let Some(reason_part) = reason_part.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let reason_part = reason_part.trim();
    let reason = reason_part
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "the reason must be a double-quoted string".to_string())?;
    if reason.trim().is_empty() {
        return Err("the reason must not be empty".to_string());
    }
    let lints: Vec<String> =
        names_part.split(',').map(|n| n.trim().to_string()).filter(|n| !n.is_empty()).collect();
    if lints.is_empty() {
        return Err("pragma must name at least one lint before the reason".to_string());
    }
    Ok((item_scope, lints, reason.trim().to_string()))
}

/// Computes the suppressed line range for an `allow-item` pragma: the
/// next item/block through the `}` matching the first `{` opened at
/// depth zero. Falls back to the statement rule when a `;` ends the
/// construct first (`struct X;`, `use …;`).
fn span_for_item(pragma: &Token<'_>, code: &[&Token<'_>]) -> (u32, u32) {
    let Some(first) = code.iter().position(|t| t.line > pragma.line) else {
        return (pragma.line, pragma.line);
    };
    let mut brace_depth: i64 = 0;
    let mut entered = false;
    let mut last_line = code[first].line;
    for t in &code[first..] {
        last_line = t.line;
        if t.kind == TokenKind::Punct {
            match t.text {
                "{" => {
                    brace_depth += 1;
                    entered = true;
                }
                "}" => {
                    brace_depth -= 1;
                    if entered && brace_depth <= 0 {
                        return (pragma.line, t.line);
                    }
                }
                ";" if !entered => return (pragma.line, t.line),
                _ => {}
            }
        }
    }
    (pragma.line, last_line)
}

/// Computes the suppressed line range for a pragma comment token.
fn span_for(pragma: &Token<'_>, code: &[&Token<'_>]) -> (u32, u32) {
    let shares_line = code.iter().any(|t| t.line == pragma.line);
    if shares_line {
        return (pragma.line, pragma.line);
    }
    // Standalone pragma: cover the next statement.
    let Some(first) = code.iter().position(|t| t.line > pragma.line) else {
        return (pragma.line, pragma.line);
    };
    let mut depth: i64 = 0;
    let mut last_line = code[first].line;
    for t in &code[first..] {
        last_line = t.line;
        if t.kind == TokenKind::Punct {
            match t.text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return (pragma.line, t.line),
                "{" => depth += 1,
                "}" if depth <= 0 => return (pragma.line, t.line),
                "}" => depth -= 1,
                ";" | "," if depth == 0 => return (pragma.line, t.line),
                _ => {}
            }
        }
    }
    (pragma.line, last_line)
}
