//! Diagnostics: violations, the aggregate report, and its human / JSON
//! renderings.

use serde::Serialize;

/// One lint finding with a precise `file:line:col` span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Violation {
    /// Lint name (registry key).
    pub lint: String,
    /// `"error"` or `"warn"`.
    pub severity: String,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found and how to fix it.
    pub message: String,
    /// Call-graph trace for interprocedural (`--deep`) findings: one
    /// `fn-name (path:line)` entry per hop from the entry point / taint
    /// source down to the finding site. Empty for file-local findings.
    /// (Serialized unconditionally: the vendored serde derive supports
    /// only `skip`/`default` attributes, not `skip_serializing_if`.)
    pub trace: Vec<String>,
}

/// Aggregate outcome of a lint run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LintReport {
    /// Rust files scanned.
    pub files_scanned: usize,
    /// Unsuppressed findings (errors and warnings).
    pub violations: Vec<Violation>,
    /// Findings silenced by a reasoned pragma.
    pub suppressed: usize,
}

impl LintReport {
    /// Unsuppressed error-severity findings (the CI gate).
    pub fn errors(&self) -> usize {
        self.violations.iter().filter(|v| v.severity == "error").count()
    }

    /// Unsuppressed warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.violations.iter().filter(|v| v.severity == "warn").count()
    }

    /// Canonical ordering: by path, then line, then column, then lint.
    pub fn sort(&mut self) {
        self.violations.sort_by(|a, b| {
            (&a.path, a.line, a.col, &a.lint).cmp(&(&b.path, b.line, b.col, &b.lint))
        });
    }

    /// `path:line:col: severity[lint]: message` lines plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}:{}: {}[{}]: {}\n",
                v.path, v.line, v.col, v.severity, v.lint, v.message
            ));
            for hop in &v.trace {
                out.push_str(&format!("    via {hop}\n"));
            }
        }
        out.push_str(&format!(
            "lbs-lint: {} files scanned, {} errors, {} warnings, {} suppressed\n",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressed
        ));
        out
    }

    /// Pretty-printed JSON (stable field order; violations pre-sorted).
    ///
    /// # Errors
    /// Serialization failure (should not happen for plain data).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| format!("serialize report: {e}"))
    }
}
