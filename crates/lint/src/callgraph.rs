//! Workspace call graph over the parsed items, with a heuristic path
//! resolver.
//!
//! Nodes are every `fn` item the [`crate::parser`] found across the
//! workspace; edges are call sites resolved by name. With no type
//! information available, resolution is deliberately *precision-first*:
//! an ambiguous call that cannot be pinned to a workspace function adds
//! **no** edge (a documented blind spot) rather than edges to every
//! same-named candidate — the deep passes would otherwise drown in
//! false positives. The heuristics, in order:
//!
//! * `Type::method(…)` / `module::f(…)` paths resolve by their last two
//!   segments against impl blocks and file-derived module paths;
//! * `self.m(…)` prefers the caller's own impl block;
//! * `recv.m(…)` uses the receiver's declared type when a `let`/param
//!   annotation reveals it, else falls back to "which candidate
//!   self-types does this function even mention", else requires the
//!   method name to be workspace-unique;
//! * bare `f(…)` prefers same-file, then same-crate, then
//!   workspace-unique free functions.

use crate::lexer::{Token, TokenKind};
use crate::parser::{FnItem, ParsedFile, CALL_KEYWORDS};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// What a call site syntactically refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalleeRef {
    /// `f(…)` with no path or receiver.
    Bare(String),
    /// `a::b::f(…)` — all path segments, callee last.
    Path(Vec<String>),
    /// `recv.m(…)` — method name plus the receiver token when it is a
    /// plain identifier (`self` included).
    Method {
        /// The method name.
        name: String,
        /// Receiver identifier, when syntactically evident.
        recv: Option<String>,
    },
}

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What is being called.
    pub callee: CalleeRef,
    /// Code-token index of the callee name.
    pub tok: usize,
    /// 1-based line of the callee name.
    pub line: u32,
    /// 1-based column of the callee name.
    pub col: u32,
}

/// One macro invocation (`name!(…)` / `name![…]` / `name!{…}`).
#[derive(Debug, Clone)]
pub struct MacroSite {
    /// Macro name (without the `!`).
    pub name: String,
    /// Code-token range of the argument tokens (delimiters excluded).
    pub args: Range<usize>,
    /// 1-based line of the macro name.
    pub line: u32,
    /// 1-based column of the macro name.
    pub col: u32,
}

/// Extracts call sites from the tokens owned by `fn_idx` (nested fns'
/// tokens are attributed to the nested fn, not the enclosing one).
pub fn extract_calls(code: &[Token<'_>], pf: &ParsedFile, fn_idx: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in pf.owned_tokens(fn_idx) {
        let t = &code[i];
        if t.kind != TokenKind::Ident || !code.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        if CALL_KEYWORDS.contains(&t.text) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &code[p]);
        let callee = match prev {
            Some(p) if p.is_punct(".") => {
                let recv = i
                    .checked_sub(2)
                    .map(|r| &code[r])
                    .and_then(|r| (r.kind == TokenKind::Ident).then(|| r.text.to_string()));
                CalleeRef::Method { name: t.text.to_string(), recv }
            }
            Some(p) if p.is_punct("::") => {
                let mut segs = vec![t.text.to_string()];
                let mut k = i - 1;
                while k >= 1 && code[k].is_punct("::") && code[k - 1].kind == TokenKind::Ident {
                    segs.insert(0, code[k - 1].text.to_string());
                    if k < 2 {
                        break;
                    }
                    k -= 2;
                }
                CalleeRef::Path(segs)
            }
            Some(p) if p.is_ident("fn") => continue,
            _ => CalleeRef::Bare(t.text.to_string()),
        };
        out.push(CallSite { callee, tok: i, line: t.line, col: t.col });
    }
    out
}

/// Extracts macro invocations from the tokens owned by `fn_idx`.
pub fn extract_macros(code: &[Token<'_>], pf: &ParsedFile, fn_idx: usize) -> Vec<MacroSite> {
    let mut out = Vec::new();
    for i in pf.owned_tokens(fn_idx) {
        let t = &code[i];
        if t.kind != TokenKind::Ident || !code.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            continue;
        }
        let Some(open) = code.get(i + 2) else { continue };
        let (o, c) = match open.text {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => continue,
        };
        let mut depth = 0usize;
        let mut j = i + 2;
        while j < code.len() {
            if code[j].is_punct(o) {
                depth += 1;
            } else if code[j].is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        out.push(MacroSite {
            name: t.text.to_string(),
            args: (i + 3).min(j)..j,
            line: t.line,
            col: t.col,
        });
    }
    out
}

/// Container-ish wrappers skipped when extracting a variable's nominal
/// type from its annotation tokens.
const TYPE_WRAPPERS: &[&str] =
    &["Option", "Vec", "Box", "Arc", "Rc", "Result", "RefCell", "Cell", "Cow", "Mutex", "RwLock"];

/// The nominal (workspace-resolvable) type in an annotation token list:
/// the first capitalized identifier that is not a known wrapper.
pub fn nominal_type(ty_tokens: &[String]) -> Option<String> {
    ty_tokens
        .iter()
        .find(|t| {
            t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && !TYPE_WRAPPERS.contains(&t.as_str())
        })
        .cloned()
}

/// Declared variable types visible in one function: parameters plus
/// `let name: Type` annotations plus `let name = Type::…` initializers.
pub fn var_types(code: &[Token<'_>], pf: &ParsedFile, fn_idx: usize) -> BTreeMap<String, String> {
    let item = &pf.fns[fn_idx];
    let mut map = BTreeMap::new();
    for p in &item.params {
        if let (Some(name), Some(ty)) = (&p.name, nominal_type(&p.ty)) {
            map.insert(name.clone(), ty);
        }
    }
    if let Some(self_ty) = &item.self_ty {
        map.insert("self".to_string(), self_ty.clone());
    }
    let owned: Vec<usize> = pf.owned_tokens(fn_idx).collect();
    for &i in &owned {
        if !code[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if code.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = code.get(j) else { continue };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        let name = name_tok.text.to_string();
        match code.get(j + 1) {
            // `let x: Type = …`
            Some(t) if t.is_punct(":") => {
                let mut ty = Vec::new();
                let mut k = j + 2;
                let mut depth = 0i32;
                while k < code.len() {
                    let t = &code[k];
                    if depth <= 0 && (t.is_punct("=") || t.is_punct(";")) {
                        break;
                    }
                    match t.text {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        "<<" => depth += 2,
                        ">>" => depth -= 2,
                        _ => {}
                    }
                    ty.push(t.text.to_string());
                    k += 1;
                }
                if let Some(n) = nominal_type(&ty) {
                    map.insert(name, n);
                }
            }
            // `let x = Type::ctor(…)`
            Some(t) if t.is_punct("=") => {
                if let Some(first) = code.get(j + 2) {
                    if first.kind == TokenKind::Ident
                        && first.text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                        && code.get(j + 3).is_some_and(|n| n.is_punct("::"))
                        && !TYPE_WRAPPERS.contains(&first.text)
                    {
                        map.insert(name, first.text.to_string());
                    }
                }
            }
            _ => {}
        }
    }
    map
}

/// One node of the workspace call graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Index into the deep pass's file table.
    pub file: usize,
    /// Index into that file's [`ParsedFile::fns`].
    pub item: usize,
    /// Crate directory name (`core`, `runtime`, … / `root`).
    pub crate_name: String,
    /// File-derived module path plus inline `mod` nesting.
    pub module: Vec<String>,
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All functions, flattened across files.
    pub nodes: Vec<Node>,
    /// `edges[caller]` → resolved callees with the call-site position.
    pub edges: Vec<Vec<Edge>>,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// Token index of the callee name in the caller's file (the argument
    /// list opens at `tok + 1`).
    pub tok: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
    /// 1-based column of the call site.
    pub col: u32,
}

/// Everything the resolver needs about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Crate directory name.
    pub crate_name: String,
    /// File-derived module path (`crates/runtime/src/wal.rs` → `[wal]`).
    pub module: Vec<String>,
    /// Non-comment tokens.
    pub code: &'a [Token<'a>],
    /// Parsed items.
    pub parsed: &'a ParsedFile,
}

/// Derives the module path a file contributes (`src/lib.rs` → ``;
/// `src/wal.rs` → `wal`; `src/cases/mod.rs` → `cases`).
pub fn file_module_path(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let Some(src_at) = parts.iter().position(|p| *p == "src" || *p == "tests") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, part) in parts.iter().enumerate().skip(src_at + 1) {
        let last = i + 1 == parts.len();
        if last {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if stem != "lib" && stem != "main" && stem != "mod" {
                out.push(stem.to_string());
            }
        } else if *part != "bin" {
            out.push(part.to_string());
        }
    }
    out
}

/// Builds the resolved call graph over all files.
pub fn build(files: &[FileCtx<'_>]) -> CallGraph {
    // Global function table + name indices.
    let mut nodes = Vec::new();
    let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (ii, item) in f.parsed.fns.iter().enumerate() {
            let gid = nodes.len();
            let mut module = f.module.clone();
            module.extend(item.module.iter().cloned());
            nodes.push(Node { file: fi, item: ii, crate_name: f.crate_name.clone(), module });
            match &item.self_ty {
                Some(ty) => {
                    methods_by_name.entry(item.name.as_str()).or_default().push(gid);
                    type_method.entry((ty.as_str(), item.name.as_str())).or_default().push(gid);
                }
                None => free_by_name.entry(item.name.as_str()).or_default().push(gid),
            }
        }
    }

    let item_of = |gid: usize| -> &FnItem {
        let n = &nodes[gid];
        &files[n.file].parsed.fns[n.item]
    };

    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
    for gid in 0..nodes.len() {
        let node = &nodes[gid];
        let f = &files[node.file];
        let item = item_of(gid);
        if item.body.is_none() {
            continue;
        }
        let calls = extract_calls(f.code, f.parsed, node.item);
        if calls.is_empty() {
            continue;
        }
        let vars = var_types(f.code, f.parsed, node.item);
        // Identifier mention set for the last-resort method filter.
        let mentions: BTreeSet<&str> = item
            .span
            .clone()
            .filter_map(|i| f.code.get(i))
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();

        for call in calls {
            let targets: Vec<usize> = match &call.callee {
                CalleeRef::Method { name, recv } => {
                    let cands = methods_by_name.get(name.as_str()).cloned().unwrap_or_default();
                    resolve_method(&cands, recv.as_deref(), item, &vars, &mentions, &nodes, files)
                }
                CalleeRef::Path(segs) => {
                    resolve_path(segs, item, &type_method, &free_by_name, &nodes, node)
                }
                CalleeRef::Bare(name) => {
                    resolve_bare(free_by_name.get(name.as_str()), node, &nodes)
                }
            };
            for to in targets {
                if to != gid {
                    edges[gid].push(Edge { to, tok: call.tok, line: call.line, col: call.col });
                }
            }
        }
    }
    CallGraph { nodes, edges }
}

fn resolve_method(
    cands: &[usize],
    recv: Option<&str>,
    caller: &FnItem,
    vars: &BTreeMap<String, String>,
    mentions: &BTreeSet<&str>,
    nodes: &[Node],
    files: &[FileCtx<'_>],
) -> Vec<usize> {
    if cands.is_empty() {
        return Vec::new();
    }
    let self_ty_of = |gid: usize| -> Option<&str> {
        let n = &nodes[gid];
        files[n.file].parsed.fns[n.item].self_ty.as_deref()
    };
    // `self.m(…)`: the caller's own impl block wins.
    if recv == Some("self") {
        if let Some(own) = &caller.self_ty {
            let own_hits: Vec<usize> =
                cands.iter().copied().filter(|&g| self_ty_of(g) == Some(own.as_str())).collect();
            if !own_hits.is_empty() {
                return own_hits;
            }
        }
    }
    // Receiver with a declared type: resolve exactly or not at all — a
    // known type with no workspace method of that name is a std call.
    if let Some(rv) = recv {
        if let Some(ty) = vars.get(rv) {
            return cands.iter().copied().filter(|&g| self_ty_of(g) == Some(ty.as_str())).collect();
        }
    }
    // Unknown receiver: keep candidates whose self type this function
    // mentions at all; a method name that is workspace-unique resolves
    // unconditionally.
    let mentioned: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&g| self_ty_of(g).is_some_and(|ty| mentions.contains(ty)))
        .collect();
    if !mentioned.is_empty() {
        return mentioned;
    }
    if cands.len() == 1 {
        return cands.to_vec();
    }
    Vec::new()
}

fn resolve_path(
    segs: &[String],
    caller: &FnItem,
    type_method: &BTreeMap<(&str, &str), Vec<usize>>,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    nodes: &[Node],
    caller_node: &Node,
) -> Vec<usize> {
    let Some(last) = segs.last() else { return Vec::new() };
    if segs.len() == 1 {
        return resolve_bare(free_by_name.get(last.as_str()), caller_node, nodes);
    }
    let qual = &segs[segs.len() - 2];
    let qual = if qual == "Self" {
        match &caller.self_ty {
            Some(ty) => ty.clone(),
            None => qual.clone(),
        }
    } else {
        qual.clone()
    };
    if let Some(hits) = type_method.get(&(qual.as_str(), last.as_str())) {
        return hits.clone();
    }
    // Module- or crate-qualified free function.
    if let Some(cands) = free_by_name.get(last.as_str()) {
        let hits: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&g| {
                let n = &nodes[g];
                n.module.contains(&qual)
                    || n.crate_name == qual
                    || format!("lbs_{}", n.crate_name) == qual.replace('-', "_")
            })
            .collect();
        if !hits.is_empty() {
            return hits;
        }
    }
    Vec::new()
}

fn resolve_bare(cands: Option<&Vec<usize>>, caller_node: &Node, nodes: &[Node]) -> Vec<usize> {
    let Some(cands) = cands else { return Vec::new() };
    let same_file: Vec<usize> =
        cands.iter().copied().filter(|&g| nodes[g].file == caller_node.file).collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> =
        cands.iter().copied().filter(|&g| nodes[g].crate_name == caller_node.crate_name).collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    if cands.len() == 1 {
        return cands.clone();
    }
    Vec::new()
}
