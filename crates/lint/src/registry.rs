//! The lint registry: every lint `lbs-lint` knows, with per-lint docs.
//!
//! Adding a lint is a three-step change (see DESIGN.md §8): register it
//! here, implement its matcher in [`crate::rules`], and add a seeded
//! violation fixture to `crates/lint/tests/rule_fixtures.rs`.

/// How severe a finding is. Only unsuppressed [`Severity::Error`]
/// findings fail the lint run; warnings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails CI when unsuppressed.
    Error,
    /// Reported but never fails the run.
    Warn,
}

impl Severity {
    /// Stable lower-case name used in human and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

/// One registered lint.
#[derive(Debug, Clone, Copy)]
pub struct LintDef {
    /// Kebab-case lint name, referenced by suppression pragmas.
    pub name: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary for `lbs lint --list`.
    pub summary: &'static str,
    /// Which invariant the lint protects and how to fix a finding.
    pub doc: &'static str,
    /// Whether this lint only fires under `lbs lint --deep` (the
    /// interprocedural passes). Pragmas naming deep lints are exempt from
    /// `unused-suppression` in shallow runs, where the lint cannot fire.
    pub deep: bool,
}

/// Name of the meta-lint for malformed / unknown suppression pragmas.
pub const MALFORMED_PRAGMA: &str = "malformed-pragma";
/// Name of the meta-lint for pragmas that suppress nothing.
pub const UNUSED_SUPPRESSION: &str = "unused-suppression";

/// Every lint, in reporting order.
pub const LINTS: &[LintDef] = &[
    LintDef {
        name: "no-unwrap-in-lib",
        severity: Severity::Error,
        summary: "library code must not call .unwrap()/.expect()",
        doc: "Library crates return typed errors (`CoreError` and friends); a stray \
              unwrap turns a recoverable condition into a worker panic that the \
              work-stealing engine must contain. Tests, bins, benches and examples \
              are exempt. Convert to `?`/`ok_or` or, when the call is provably \
              infallible, suppress with a pragma explaining why.",
        deep: false,
    },
    LintDef {
        name: "no-panic-in-lib",
        severity: Severity::Error,
        summary: "library code must not invoke panic!/unreachable!/todo!/unimplemented!",
        doc: "Same contract as no-unwrap-in-lib: library failure modes are values, \
              not panics. `debug_assert!` stays allowed (compiled out in release).",
        deep: false,
    },
    LintDef {
        name: "no-unseeded-rng",
        severity: Severity::Error,
        summary: "randomness must flow through derive_seed (no thread_rng/from_entropy/OsRng)",
        doc: "Every run of the system replays from one master seed \
              (`lbs_workload::derive_seed`); ambient entropy anywhere — including \
              tests — breaks conformance replay and golden blessing.",
        deep: false,
    },
    LintDef {
        name: "no-raw-thread-spawn",
        severity: Severity::Error,
        summary: "threads are created only by lbs-parallel::engine",
        doc: "Deterministic scheduling, panic containment, and metrics attribution \
              all live in the work-stealing engine; `std::thread::spawn` elsewhere \
              bypasses all three. Use the engine, or scoped helpers inside \
              lbs-parallel.",
        deep: false,
    },
    LintDef {
        name: "no-wall-clock-in-dp",
        severity: Severity::Error,
        summary: "Instant::now/SystemTime only in lbs-metrics and bench code",
        doc: "`Bulk_dp` outputs must be a pure function of (snapshot, k, seed); \
              wall-clock reads in algorithm crates invite time-dependent behavior. \
              Timing belongs in lbs-metrics stage timers. Pure observability reads \
              that cannot influence outputs may be suppressed with a reason.",
        deep: false,
    },
    LintDef {
        name: "no-float-eq",
        severity: Severity::Error,
        summary: "no ==/!= against float literals in cost code",
        doc: "Exact cost arithmetic is integral (`u128` areas); float comparisons \
              with == are a portability hazard. Compare with an epsilon or use the \
              integral cost path.",
        deep: false,
    },
    LintDef {
        name: "no-hashmap-in-serialized-output",
        severity: Severity::Error,
        summary: "serialized structs must not contain HashMap/HashSet fields",
        doc: "Hash iteration order is randomized per process, so serializing a \
              HashMap field produces byte-different output across runs — exactly \
              the nondeterminism golden corpora exist to catch. Use BTreeMap / \
              BTreeSet, or mark the field `#[serde(skip)]`.",
        deep: false,
    },
    LintDef {
        name: "forbid-unsafe-header",
        severity: Severity::Error,
        summary: "every crate root must carry #![forbid(unsafe_code)]",
        doc: "The workspace is 100% safe Rust; the forbid header makes that a \
              compile-time guarantee per crate rather than a convention.",
        deep: false,
    },
    LintDef {
        name: "no-println-in-lib",
        severity: Severity::Error,
        summary: "library code must not print to stdout/stderr",
        doc: "Library output goes through returned values, `std::io::Write` sinks \
              (the CLI pattern), or lbs-metrics. println!/dbg! in a library is \
              untestable and pollutes machine-readable CLI output.",
        deep: false,
    },
    LintDef {
        name: "no-unchecked-io-in-runtime",
        severity: Severity::Error,
        summary: "runtime WAL/checkpoint code must not unwrap/expect io::Result values",
        doc: "Durability code in lbs-runtime (WAL appends, checkpoint writes, \
              recovery scans) treats every io failure as a first-class outcome: \
              a torn frame or failed fsync must surface as `RuntimeError::Io` so \
              recovery and retry can handle it. An unwrap on an io::Result \
              panics mid-write and can leave a half-written frame behind with \
              no typed record of the failure. Propagate with `?` (via the \
              `From<io::Error>` impl) instead.",
        deep: false,
    },
    LintDef {
        name: "no-raw-fs-in-runtime",
        severity: Severity::Error,
        summary: "runtime durability code must go through the StorageBackend seam",
        doc: "Every byte lbs-runtime persists flows through the `StorageBackend` \
              trait (`crates/runtime/src/storage.rs`), so the deterministic \
              fault layer (`FaultFs`) sees every write, fsync, rename, and \
              read the production path performs. A direct `std::fs`/`File::`/\
              `OpenOptions` call bypasses the seam: it works in production and \
              silently escapes every storage-fault sweep, leaving that io \
              unexercised by crash-restart testing. Route the operation \
              through the backend handle (`storage.create/read/rename/…`); \
              storage.rs itself (the seam's one real-fs implementation) and \
              test code are exempt.",
        deep: false,
    },
    LintDef {
        name: "no-wall-clock-in-bench-cases",
        severity: Severity::Error,
        summary: "bench case bodies read time only through the harness Sampler",
        doc: "Committed bench snapshots are comparable across hosts only because \
              every recorded nanosecond flows through one timer (`suite::Sampler`) \
              under one host calibration. A raw `Instant::now`/`SystemTime` inside \
              `crates/bench/src/cases.rs` measures outside that contract: its \
              numbers silently skip calibration and the median/p95 aggregation. \
              Wrap the region in `sampler.sample(..)` instead; the timer itself \
              lives in the suite/harness modules, which are exempt.",
        deep: false,
    },
    LintDef {
        name: "panic-reachability",
        severity: Severity::Error,
        summary: "no panicking construct is reachable from a service entry point (--deep)",
        doc: "Interprocedural: starting from the service entry points declared in \
              lint-taint.toml ([panic-reachability] entry-points), every function \
              transitively reachable over the workspace call graph must be free of \
              `unwrap`/`expect`, panic-family macros, and unguarded indexing. A \
              finding is anchored at the panicking construct and carries the \
              call-graph trace from the nearest entry point. Guarded indexing \
              (loop-bound index, literal index, `.len()`-checked receiver) is \
              exempt; anything else needs a typed-error rewrite or a reasoned \
              pragma at the site.",
        deep: true,
    },
    LintDef {
        name: "location-taint",
        severity: Severity::Error,
        summary: "raw coordinates must not flow into formatting/error/WAL/serde sinks (--deep)",
        doc: "Interprocedural taint: values of the source types in lint-taint.toml \
              ([location-taint] sources: `Point`, `UserUpdate`, …) must not reach \
              Debug/Display formatting, error strings, or WAL/serde sinks — in \
              this function or any callee — except through the sanctioned \
              cloak/policy sanitizers. The paper's Definition-6 guarantee is void \
              if a precise coordinate leaks through a log line or a serialized \
              side channel, no matter what the cloaking DP computed. Route the \
              value through a sanitizer (`BulkPolicy`, `CloakingPolicy`, an \
              anonymize entry point) or suppress at the sink with a reason \
              explaining why the flow stays inside the trust boundary.",
        deep: true,
    },
    LintDef {
        name: "determinism-taint",
        severity: Severity::Error,
        summary: "nondeterministic sources must not reach serialized/fingerprinted output (--deep)",
        doc: "Interprocedural generalization of no-hashmap-in-serialized-output: \
              HashMap/HashSet iteration order, wall-clock reads, and thread ids \
              (the [determinism-taint] sources in lint-taint.toml) must not flow \
              — directly or through calls — into serialized snapshots, golden \
              fingerprints, or WAL bytes. Sort first (`sort*`, BTreeMap/BTreeSet \
              collection are sanitizers) or suppress with a reason proving the \
              order cannot reach the bytes.",
        deep: true,
    },
    LintDef {
        name: MALFORMED_PRAGMA,
        severity: Severity::Error,
        summary: "suppression pragmas must name a known lint and carry a reason",
        doc: "The pragma grammar is `// lbs-lint: allow(<lint>[, <lint>…], \
              reason = \"…\")`. A pragma without a non-empty reason, or naming an \
              unregistered lint, is itself an error — suppressions are audited.",
        deep: false,
    },
    LintDef {
        name: UNUSED_SUPPRESSION,
        severity: Severity::Warn,
        summary: "pragma suppresses nothing (stale after a fix?)",
        doc: "The annotated code no longer triggers the named lint; delete the \
              pragma so the suppression inventory stays honest.",
        deep: false,
    },
];

/// Looks up a lint by name.
pub fn find(name: &str) -> Option<&'static LintDef> {
    LINTS.iter().find(|l| l.name == name)
}

/// Whether `name` is a deep-only lint (fires only under `--deep`).
pub fn is_deep(name: &str) -> bool {
    find(name).is_some_and(|l| l.deep)
}

/// The names of every deep (interprocedural) pass, in registry order.
pub fn deep_lint_names() -> Vec<&'static str> {
    LINTS.iter().filter(|l| l.deep).map(|l| l.name).collect()
}
