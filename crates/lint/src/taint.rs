//! Interprocedural taint engine shared by the `location-taint` and
//! `determinism-taint` passes.
//!
//! The engine is a label-propagation dataflow over the token stream,
//! guided by the [`crate::parser`] items and the [`crate::callgraph`]:
//!
//! * **Labels.** Each variable in a function carries a bitmask: bit 0 is
//!   SOURCE ("definitely carries tainted data"), bit *i*+1 is "carries
//!   whatever parameter *i* carried". Running the same propagation once
//!   per function yields both real taint and a per-parameter summary.
//! * **Intra-procedural propagation** walks `let`/assignment units,
//!   container-mutation statements (`v.push(x)`), and `for` loops to a
//!   fixpoint. Two source models exist: *value* sources (a `Point` is
//!   sensitive wherever it goes) and *carrier* sources (a `HashMap` is
//!   only sensitive when its iteration order escapes via an
//!   order-sensitive method).
//! * **Sinks** are direct calls/macros from the spec; a sanitizer call
//!   or sanitizer type anywhere in the sunk expression clears it (a
//!   documented approximation).
//! * **Interprocedural propagation** runs the per-function summaries to
//!   a fixpoint over the call graph: passing a tainted argument into a
//!   parameter that (transitively) reaches a sink is a finding at the
//!   call site, with the exemplar chain recorded as the finding's trace.
//!
//! Everything here is heuristic: no types, no trait resolution, no
//! macro expansion. DESIGN.md §12 lists the blind spots.

use crate::callgraph::{self, CallGraph, CalleeRef, FileCtx};
use crate::lexer::{Token, TokenKind};
use crate::registry::{self, Severity};
use crate::report::Violation;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Label bit for "carries actual source data".
const SOURCE: u64 = 1;

/// Configuration of one taint pass.
#[derive(Debug, Clone, Default)]
pub struct TaintSpec {
    /// Registered lint name this pass reports under.
    pub lint: String,
    /// Types whose *values* are sensitive (`Point`, `UserUpdate`).
    pub value_sources: Vec<String>,
    /// Container types whose *iteration order* is sensitive
    /// (`HashMap`, `HashSet`).
    pub carrier_sources: Vec<String>,
    /// Methods on a carrier that expose its order (`iter`, `keys`, …).
    pub order_methods: Vec<String>,
    /// When non-empty, a value-tainted receiver keeps its taint only
    /// through these methods; any other method call launders
    /// (`db.len()` is harmless, `db.iter()` is not).
    pub taint_methods: Vec<String>,
    /// Calls whose result is tainted (`Instant::now`, `thread::current`).
    pub source_calls: Vec<String>,
    /// Call names that are sinks; `Type::method` entries match only when
    /// the receiver is resolvable to `Type` (or is a field spelled like
    /// it), plain names match anywhere.
    pub sink_calls: Vec<String>,
    /// Macros that are sinks (`format`, `write`, …).
    pub sink_macros: Vec<String>,
    /// Calls that cleanse (`anonymize`, `sort`, `encode_policy`, …).
    pub sanitizer_calls: Vec<String>,
    /// Types whose values are always clean (`BulkPolicy`, `BTreeMap`).
    pub sanitizer_types: Vec<String>,
}

/// Per-function analysis state.
struct FnState {
    /// Variable → label mask.
    vars: BTreeMap<String, u64>,
    /// Variables of carrier type (order-sensitive containers).
    carriers: BTreeSet<String>,
    /// Declared variable types (for `Type::method` sink matching).
    var_types: BTreeMap<String, String>,
    /// Parameter names in order (for the summary bits).
    param_names: Vec<Option<String>>,
    /// Bitmask of parameters that reach a sink (directly or via calls).
    sink_params: u64,
    /// Exemplar trace per parameter index.
    exemplars: BTreeMap<u32, Vec<String>>,
}

/// Runs one taint pass over the analyzed functions.
///
/// `analyzed` holds the global node ids the pass may report on (library
/// code; tests and harness code are excluded by the caller).
/// `sanctioned(file_idx, line)` marks sink sites covered by a pragma for
/// this pass's lint: they still report locally (so the pragma registers
/// as used) but do not feed interprocedural summaries. Returns raw
/// violations (pre-suppression).
pub fn run(
    spec: &TaintSpec,
    files: &[FileCtx<'_>],
    graph: &CallGraph,
    analyzed: &BTreeSet<usize>,
    sanctioned: &dyn Fn(usize, u32) -> bool,
) -> Vec<Violation> {
    let carrier_fields = collect_carrier_fields(spec, files);

    // Phase 1: intra-procedural label propagation per function.
    let mut states: BTreeMap<usize, FnState> = BTreeMap::new();
    for &gid in analyzed {
        states.insert(gid, intra(spec, files, graph, gid, &carrier_fields, sanctioned));
    }

    // Phase 2: summary fixpoint over the call graph — a parameter that
    // flows into a callee's sink-reaching parameter reaches a sink too.
    for _ in 0..20 {
        let mut changed = false;
        for &gid in analyzed {
            let updates = propagate_calls(spec, files, graph, gid, &states, &carrier_fields);
            if let Some(st) = states.get_mut(&gid) {
                for (bit, chain) in updates {
                    if st.sink_params & (1 << bit) == 0 {
                        st.sink_params |= 1 << bit;
                        st.exemplars.insert(bit, chain);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 3: findings — direct sink hits with SOURCE labels, plus
    // SOURCE arguments passed into sink-reaching parameters.
    let mut out = Vec::new();
    for &gid in analyzed {
        findings(spec, files, graph, gid, &states, &carrier_fields, sanctioned, &mut out);
    }
    out.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    out.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.col == b.col && a.lint == b.lint);
    out
}

/// Struct fields declared with a carrier type anywhere in the scanned
/// files (`cache: HashMap<…>` → `cache`), so `self.cache.iter()` is
/// recognized without type information.
fn collect_carrier_fields(spec: &TaintSpec, files: &[FileCtx<'_>]) -> BTreeSet<String> {
    let mut fields = BTreeSet::new();
    if spec.carrier_sources.is_empty() {
        return fields;
    }
    for f in files {
        for i in 0..f.code.len() {
            // Item-level `name : Carrier <` — fn-owned tokens excluded so
            // local `let` annotations don't pollute the field set.
            if f.parsed.owner.get(i).copied().flatten().is_some() {
                continue;
            }
            let t = &f.code[i];
            if t.kind == TokenKind::Ident
                && f.code.get(i + 1).is_some_and(|n| n.is_punct(":"))
                && f.code
                    .get(i + 2)
                    .is_some_and(|n| spec.carrier_sources.iter().any(|c| n.is_ident(c)))
            {
                fields.insert(t.text.to_string());
            }
        }
    }
    fields
}

/// Computes the fixed variable-label map for one function.
fn intra(
    spec: &TaintSpec,
    files: &[FileCtx<'_>],
    graph: &CallGraph,
    gid: usize,
    carrier_fields: &BTreeSet<String>,
    sanctioned: &dyn Fn(usize, u32) -> bool,
) -> FnState {
    let node = &graph.nodes[gid];
    let f = &files[node.file];
    let item = &f.parsed.fns[node.item];
    let mut vars: BTreeMap<String, u64> = BTreeMap::new();
    let mut carriers: BTreeSet<String> = BTreeSet::new();
    let mut param_names = Vec::new();

    for (pi, p) in item.params.iter().enumerate() {
        param_names.push(p.name.clone());
        let Some(name) = &p.name else { continue };
        let mut mask = 0u64;
        if pi < 62 {
            mask |= 1 << (pi + 1);
        }
        let nominal = callgraph::nominal_type(&p.ty);
        if name == "self" {
            if let Some(ty) = &item.self_ty {
                if spec.value_sources.iter().any(|s| s == ty) {
                    mask |= SOURCE;
                }
                if spec.carrier_sources.iter().any(|s| s == ty) {
                    carriers.insert(name.clone());
                }
            }
        }
        if let Some(n) = &nominal {
            if spec.value_sources.contains(n) {
                mask |= SOURCE;
            }
            if spec.sanitizer_types.contains(n) {
                mask = 0;
            }
            if spec.carrier_sources.contains(n) {
                carriers.insert(name.clone());
            }
        }
        vars.insert(name.clone(), mask);
    }

    let owned: Vec<usize> = f.parsed.owned_tokens(node.item).collect();
    // Record carrier-typed lets up front (they never change).
    for &i in &owned {
        if f.code[i].is_ident("let") {
            let mut j = i + 1;
            if f.code.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name_tok) = f.code.get(j) {
                if name_tok.kind == TokenKind::Ident
                    && f.code.get(j + 1).is_some_and(|t| t.is_punct(":"))
                    && f.code
                        .get(j + 2)
                        .is_some_and(|t| spec.carrier_sources.iter().any(|c| t.is_ident(c)))
                {
                    carriers.insert(name_tok.text.to_string());
                }
            }
        }
    }

    let mut st = FnState {
        vars,
        carriers,
        var_types: callgraph::var_types(f.code, f.parsed, node.item),
        param_names,
        sink_params: 0,
        exemplars: BTreeMap::new(),
    };
    // Propagate to a fixpoint (label masks only grow, so this converges).
    for _ in 0..8 {
        if !propagate_once(spec, f, &owned, &mut st, carrier_fields) {
            break;
        }
    }

    // Direct (intra-procedural) sink hits establish the summary base.
    let qname = item.display_name();
    let calls = callgraph::extract_calls(f.code, f.parsed, node.item);
    let macros = callgraph::extract_macros(f.code, f.parsed, node.item);
    for call in &calls {
        let Some(args) = call_args(f.code, call.tok) else { continue };
        if !is_sink_call(spec, &st, &call.callee) || sanctioned(node.file, call.line) {
            continue;
        }
        let lbl = range_labels(spec, f, &st, carrier_fields, args.clone(), true);
        if lbl != 0 && !range_sanitized(spec, f, args) {
            for bit in param_bits(lbl) {
                st.sink_params |= 1 << bit;
                st.exemplars.entry(bit).or_insert_with(|| {
                    vec![format!(
                        "parameter `{}` of `{qname}` reaches sink `{}` ({}:{})",
                        st.param_names
                            .get((bit - 1) as usize)
                            .cloned()
                            .flatten()
                            .unwrap_or_else(|| format!("#{}", bit - 1)),
                        callee_name(&call.callee),
                        f.rel,
                        call.line
                    )]
                });
            }
        }
    }
    for m in &macros {
        if !spec.sink_macros.contains(&m.name) || sanctioned(node.file, m.line) {
            continue;
        }
        let lbl = range_labels(spec, f, &st, carrier_fields, m.args.clone(), true);
        if lbl != 0 && !range_sanitized(spec, f, m.args.clone()) {
            for bit in param_bits(lbl) {
                st.sink_params |= 1 << bit;
                st.exemplars.entry(bit).or_insert_with(|| {
                    vec![format!(
                        "parameter `{}` of `{qname}` reaches sink macro `{}!` ({}:{})",
                        st.param_names
                            .get((bit - 1) as usize)
                            .cloned()
                            .flatten()
                            .unwrap_or_else(|| format!("#{}", bit - 1)),
                        m.name,
                        f.rel,
                        m.line
                    )]
                });
            }
        }
    }
    st
}

/// One propagation sweep; returns whether any label changed.
fn propagate_once(
    spec: &TaintSpec,
    f: &FileCtx<'_>,
    owned: &[usize],
    st: &mut FnState,
    carrier_fields: &BTreeSet<String>,
) -> bool {
    let code = f.code;
    let mut changed = false;
    for &i in owned {
        let t = &code[i];
        // `let [mut] name [: Ty] = RHS ;` — plus the pattern forms:
        // `let (a, b) = …`, `let Some(x) = … else`, `if let` / `while
        // let`, which bind the scrutinee's labels to every binder.
        if t.is_ident("let") {
            let is_cond = i > 0 && (code[i - 1].is_ident("if") || code[i - 1].is_ident("while"));
            let mut j = i + 1;
            if code.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = code.get(j) else { continue };
            let simple = !is_cond
                && name_tok.kind == TokenKind::Ident
                && name_tok.text.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && code.get(j + 1).is_some_and(|n| n.is_punct(":") || n.is_punct("="));
            if !simple {
                changed |= bind_pattern(spec, f, st, carrier_fields, j, is_cond);
                continue;
            }
            let name = name_tok.text;
            // Skip a type annotation; find `=` at depth 0.
            let mut k = j + 1;
            let mut depth = 0i32;
            let mut sanitized_ty = false;
            let mut sourced_ty = false;
            while k < code.len() {
                let tk = &code[k];
                if depth <= 0 && (tk.is_punct("=") || tk.is_punct(";")) {
                    break;
                }
                if tk.kind == TokenKind::Ident && spec.sanitizer_types.iter().any(|s| s == tk.text)
                {
                    sanitized_ty = true;
                }
                if tk.kind == TokenKind::Ident && spec.value_sources.iter().any(|s| s == tk.text) {
                    sourced_ty = true;
                }
                match tk.text {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    "<<" => depth += 2,
                    ">>" => depth -= 2,
                    _ => {}
                }
                k += 1;
            }
            if !code.get(k).is_some_and(|tk| tk.is_punct("=")) {
                continue;
            }
            let rhs = rhs_range(code, k + 1);
            if sanitized_ty || range_sanitized(spec, f, rhs.clone()) {
                // Sanitized binding: (re)set to clean.
                if st.vars.get(name).copied().unwrap_or(0) != 0 {
                    st.vars.insert(name.to_string(), 0);
                    changed = true;
                }
                continue;
            }
            let mut lbl = range_labels(spec, f, st, carrier_fields, rhs, false);
            if sourced_ty {
                lbl |= SOURCE;
            }
            if lbl != 0 {
                changed |= grow_var(&mut st.vars, name, lbl);
            }
            continue;
        }
        // Statement-initial `name …`: assignment or container mutation.
        if t.kind == TokenKind::Ident && st.vars.contains_key(t.text) {
            let at_stmt_start = i == 0
                || code
                    .get(i - 1)
                    .is_some_and(|p| p.is_punct(";") || p.is_punct("{") || p.is_punct("}"));
            if !at_stmt_start {
                continue;
            }
            // Walk the access path (`x.f.g`) to find `=` or a method.
            let mut k = i + 1;
            while code.get(k).is_some_and(|p| p.is_punct("."))
                && code.get(k + 1).is_some_and(|n| n.kind == TokenKind::Ident)
                && !code.get(k + 2).is_some_and(|n| n.is_punct("("))
            {
                k += 2;
            }
            if code.get(k).is_some_and(|p| {
                matches!(p.text, "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=")
                    && p.kind == TokenKind::Punct
            }) {
                let rhs = rhs_range(code, k + 1);
                if !range_sanitized(spec, f, rhs.clone()) {
                    let lbl = range_labels(spec, f, st, carrier_fields, rhs, false);
                    if lbl != 0 {
                        changed |= grow_var(&mut st.vars, t.text, lbl);
                    }
                }
                continue;
            }
            // `x.push(args)` / `x.sort()` style statement.
            if code.get(k).is_some_and(|p| p.is_punct("."))
                && code.get(k + 1).is_some_and(|n| n.kind == TokenKind::Ident)
                && code.get(k + 2).is_some_and(|n| n.is_punct("("))
            {
                let m = code[k + 1].text;
                if spec.sanitizer_calls.iter().any(|s| s == m) {
                    if st.vars.get(t.text).copied().unwrap_or(0) != 0 {
                        st.vars.insert(t.text.to_string(), 0);
                        changed = true;
                    }
                } else if matches!(
                    m,
                    "push"
                        | "insert"
                        | "extend"
                        | "append"
                        | "push_str"
                        | "push_back"
                        | "push_front"
                ) {
                    if let Some(args) = call_args(code, k + 1) {
                        let lbl = range_labels(spec, f, st, carrier_fields, args, false);
                        if lbl != 0 {
                            changed |= grow_var(&mut st.vars, t.text, lbl);
                        }
                    }
                }
            }
            continue;
        }
        // `match EXPR { PAT => …, … }` binds arm binders to the
        // scrutinee's labels.
        if t.is_ident("match") {
            changed |= bind_match_arms(spec, f, st, carrier_fields, i);
            continue;
        }
        // `for PAT in EXPR {`
        if t.is_ident("for") {
            let mut pat_idents = Vec::new();
            let mut k = i + 1;
            while k < code.len() && !code[k].is_ident("in") {
                if code[k].is_punct("{") || code[k].is_punct(";") {
                    break;
                }
                if code[k].kind == TokenKind::Ident && !code[k].is_ident("mut") {
                    pat_idents.push(code[k].text.to_string());
                }
                k += 1;
            }
            if !code.get(k).is_some_and(|t| t.is_ident("in")) {
                continue;
            }
            let expr_start = k + 1;
            let mut depth = 0i32;
            let mut end = expr_start;
            while end < code.len() {
                let e = &code[end];
                if depth <= 0 && e.is_punct("{") {
                    break;
                }
                match e.text {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    _ => {}
                }
                end += 1;
            }
            let lbl = range_labels(spec, f, st, carrier_fields, expr_start..end, true);
            if lbl != 0 && !range_sanitized(spec, f, expr_start..end) {
                for p in &pat_idents {
                    changed |= grow_var(&mut st.vars, p, lbl);
                }
            }
        }
    }
    changed
}

/// Grows a variable's label mask; returns whether anything changed.
fn grow_var(vars: &mut BTreeMap<String, u64>, name: &str, lbl: u64) -> bool {
    let entry = vars.entry(name.to_string()).or_insert(0);
    let next = *entry | lbl;
    if next != *entry {
        *entry = next;
        true
    } else {
        false
    }
}

/// Keywords that appear inside patterns without being binders.
const PATTERN_KEYWORDS: &[&str] = &["mut", "ref", "box", "_", "if", "in"];

/// Collects binder identifiers from a pattern token range: lowercase
/// idents that are not path segments (`next != ::`), struct-field keys
/// (`next != :`), or pattern keywords.
fn pattern_binders(code: &[Token<'_>], range: Range<usize>) -> Vec<String> {
    let mut out = Vec::new();
    for i in range.start..range.end.min(code.len()) {
        let t = &code[i];
        if t.kind != TokenKind::Ident
            || PATTERN_KEYWORDS.contains(&t.text)
            || !t.text.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        {
            continue;
        }
        if code.get(i + 1).is_some_and(|n| n.is_punct("::") || n.is_punct(":")) {
            continue;
        }
        if i > 0 && code[i - 1].is_punct("::") {
            continue;
        }
        out.push(t.text.to_string());
    }
    out
}

/// Handles the pattern `let` forms (`let (a, b) = …`, `let Some(x) = …
/// else`, `if let`, `while let`): every binder in the pattern receives
/// the scrutinee's labels. `start` is the first pattern token; returns
/// whether any label changed.
fn bind_pattern(
    spec: &TaintSpec,
    f: &FileCtx<'_>,
    st: &mut FnState,
    carrier_fields: &BTreeSet<String>,
    start: usize,
    is_cond: bool,
) -> bool {
    let code = f.code;
    // Pattern region: up to `=` at depth 0. Struct-pattern braces follow
    // an identifier; a `{` that doesn't is a body — bail (no initializer).
    let mut depth = 0i32;
    let mut k = start;
    while k < code.len() {
        let t = &code[k];
        if depth <= 0 && t.is_punct("=") {
            break;
        }
        if depth <= 0 && t.is_punct(";") {
            return false;
        }
        match t.text {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" => {
                if k > start && code[k - 1].kind == TokenKind::Ident {
                    depth += 1;
                } else if depth <= 0 {
                    return false;
                } else {
                    depth += 1;
                }
            }
            "}" => depth -= 1,
            _ => {}
        }
        k += 1;
    }
    if !code.get(k).is_some_and(|t| t.is_punct("=")) {
        return false;
    }
    let binders = pattern_binders(code, start..k);
    if binders.is_empty() {
        return false;
    }
    // Scrutinee: conditional forms end at the body `{`; plain pattern
    // lets run to the `;` (let-else blocks are included — harmless).
    let rhs = if is_cond {
        let mut d = 0i32;
        let mut e = k + 1;
        while e < code.len() {
            let t = &code[e];
            if d <= 0 && t.is_punct("{") {
                break;
            }
            match t.text {
                "(" | "[" => d += 1,
                ")" | "]" => d -= 1,
                _ => {}
            }
            e += 1;
        }
        k + 1..e
    } else {
        rhs_range(code, k + 1)
    };
    if range_sanitized(spec, f, rhs.clone()) {
        let mut changed = false;
        for b in &binders {
            if st.vars.get(b).copied().unwrap_or(0) != 0 {
                st.vars.insert(b.clone(), 0);
                changed = true;
            }
        }
        return changed;
    }
    let lbl = range_labels(spec, f, st, carrier_fields, rhs, false);
    if lbl == 0 {
        return false;
    }
    let mut changed = false;
    for b in &binders {
        changed |= grow_var(&mut st.vars, b, lbl);
    }
    changed
}

/// Handles `match SCRUTINEE { PAT => …, … }`: every arm binder receives
/// the scrutinee's labels. `at` is the `match` token; returns whether
/// any label changed.
fn bind_match_arms(
    spec: &TaintSpec,
    f: &FileCtx<'_>,
    st: &mut FnState,
    carrier_fields: &BTreeSet<String>,
    at: usize,
) -> bool {
    let code = f.code;
    let mut depth = 0i32;
    let mut k = at + 1;
    while k < code.len() {
        let t = &code[k];
        if depth <= 0 && t.is_punct("{") {
            break;
        }
        match t.text {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            _ => {}
        }
        k += 1;
    }
    if k >= code.len() {
        return false;
    }
    let lbl = range_labels(spec, f, st, carrier_fields, at + 1..k, false);
    if lbl == 0 {
        return false;
    }
    // Walk the arm list at brace depth 1: pattern tokens run from an arm
    // start (block open or a depth-1 `,`) to the arm's `=>`.
    let mut brace = 0i32;
    let mut other = 0i32;
    let mut arm_start = k + 1;
    let mut in_pattern = true;
    let mut changed = false;
    let mut i = k;
    while i < code.len() {
        let t = &code[i];
        match t.text {
            "{" if t.kind == TokenKind::Punct => {
                brace += 1;
                if brace == 1 {
                    arm_start = i + 1;
                    in_pattern = true;
                }
            }
            "}" if t.kind == TokenKind::Punct => {
                brace -= 1;
                if brace == 0 {
                    break;
                }
                // A block-bodied arm may omit the trailing comma; the
                // body's close brace then starts the next arm directly.
                if brace == 1 && !in_pattern {
                    arm_start = i + 1;
                    in_pattern = true;
                }
            }
            "(" | "[" => other += 1,
            ")" | "]" => other -= 1,
            "=>" if brace == 1 && other == 0 && in_pattern => {
                for b in pattern_binders(code, arm_start..i) {
                    changed |= grow_var(&mut st.vars, &b, lbl);
                }
                in_pattern = false;
            }
            "," if brace == 1 && other == 0 && !in_pattern => {
                arm_start = i + 1;
                in_pattern = true;
            }
            _ => {}
        }
        i += 1;
    }
    changed
}

/// The token range of an expression starting at `from` up to the `;`
/// that ends the statement (bracket-depth aware).
fn rhs_range(code: &[Token<'_>], from: usize) -> Range<usize> {
    let mut depth = 0i32;
    let mut j = from;
    while j < code.len() {
        let t = &code[j];
        match t.text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" if depth <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    from..j
}

/// Labels carried by a token range. `carrier_direct`: a bare mention of
/// a carrier (no method call) counts as SOURCE — used for `for x in
/// &map` headers and sink arguments, where the container itself escapes.
fn range_labels(
    spec: &TaintSpec,
    f: &FileCtx<'_>,
    st: &FnState,
    carrier_fields: &BTreeSet<String>,
    range: Range<usize>,
    carrier_direct: bool,
) -> u64 {
    let code = f.code;
    let mut lbl = 0u64;
    let mut i = range.start;
    while i < range.end.min(code.len()) {
        let t = &code[i];
        // Implicit format captures (`"… {p:?} …"`) reference variables
        // from inside the string literal.
        if matches!(t.kind, TokenKind::Str | TokenKind::RawStr) {
            for name in format_captures(t.text) {
                if st.carriers.contains(&name) || carrier_fields.contains(&name) {
                    if carrier_direct {
                        lbl |= SOURCE;
                    }
                } else if let Some(&mask) = st.vars.get(&name) {
                    lbl |= mask;
                }
            }
            i += 1;
            continue;
        }
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let next_is_call = code.get(i + 1).is_some_and(|n| n.is_punct("(") || n.is_punct("!"));
        let prev = i.checked_sub(1).map(|p| &code[p]);
        let after_dot = prev.is_some_and(|p| p.is_punct("."));
        let after_path = prev.is_some_and(|p| p.is_punct("::"));

        // Source calls: `Instant::now(` / bare `f(` forms.
        if next_is_call {
            let full = if after_path && i >= 2 && code[i - 2].kind == TokenKind::Ident {
                format!("{}::{}", code[i - 2].text, t.text)
            } else {
                String::new()
            };
            if spec.source_calls.iter().any(|s| *s == t.text || *s == full) {
                lbl |= SOURCE;
            }
            i += 1;
            continue;
        }
        // Value-source constructors: `Point::new(…)` / `Point { … }`.
        if !after_dot
            && !after_path
            && spec.value_sources.iter().any(|s| s == t.text)
            && code.get(i + 1).is_some_and(|n| n.is_punct("::") || n.is_punct("{"))
        {
            lbl |= SOURCE;
            i += 1;
            continue;
        }
        if after_path {
            i += 1;
            continue;
        }
        // Carrier occurrences: `map.iter()` / `self.cache.keys()` / bare.
        let is_carrier_var = !after_dot && st.carriers.contains(t.text);
        let is_carrier_field = after_dot && carrier_fields.contains(t.text);
        if is_carrier_var || is_carrier_field {
            let ordered = code.get(i + 1).is_some_and(|n| n.is_punct("."))
                && code.get(i + 2).is_some_and(|m| {
                    m.kind == TokenKind::Ident && spec.order_methods.iter().any(|o| o == m.text)
                })
                && code.get(i + 3).is_some_and(|n| n.is_punct("("));
            if ordered || carrier_direct {
                lbl |= SOURCE;
            }
            i += 1;
            continue;
        }
        if after_dot {
            i += 1;
            continue;
        }
        // Plain variable occurrence.
        if let Some(&mask) = st.vars.get(t.text) {
            if mask != 0 {
                // Method laundering for value taint: `db.len()` is clean
                // unless the method is on the keep-list.
                let launder = !spec.taint_methods.is_empty()
                    && code.get(i + 1).is_some_and(|n| n.is_punct("."))
                    && code.get(i + 2).is_some_and(|m| m.kind == TokenKind::Ident)
                    && code.get(i + 3).is_some_and(|n| n.is_punct("("))
                    && !spec.taint_methods.iter().any(|m| code[i + 2].is_ident(m));
                if !launder {
                    lbl |= mask;
                }
            }
        }
        i += 1;
    }
    lbl
}

/// Identifier names captured implicitly by a format string literal
/// (`"user {id} at {p:?}"` → `["id", "p"]`). Positional (`{}`/`{0}`)
/// and escaped (`{{`) braces are skipped.
fn format_captures(literal: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = literal.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'{' {
            i += 1;
            continue;
        }
        if bytes.get(i + 1) == Some(&b'{') {
            i += 2; // escaped `{{`
            continue;
        }
        let mut j = i + 1;
        while j < bytes.len() && bytes[j] != b'}' && bytes[j] != b':' {
            j += 1;
        }
        let name = &literal[i + 1..j];
        if !name.is_empty()
            && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            out.push(name.to_string());
        }
        i = j + 1;
    }
    out
}

/// Whether a token range contains a sanitizer call or sanitizer type.
fn range_sanitized(spec: &TaintSpec, f: &FileCtx<'_>, range: Range<usize>) -> bool {
    let code = f.code;
    for i in range.start..range.end.min(code.len()) {
        let t = &code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if spec.sanitizer_types.iter().any(|s| s == t.text) {
            return true;
        }
        if code.get(i + 1).is_some_and(|n| n.is_punct("(") || n.is_punct("::"))
            && spec.sanitizer_calls.iter().any(|s| s == t.text)
        {
            return true;
        }
    }
    false
}

/// The argument token range of a call whose callee name sits at `tok`.
fn call_args(code: &[Token<'_>], tok: usize) -> Option<Range<usize>> {
    if !code.get(tok + 1).is_some_and(|t| t.is_punct("(")) {
        return None;
    }
    let mut depth = 0usize;
    let mut j = tok + 1;
    while j < code.len() {
        if code[j].is_punct("(") {
            depth += 1;
        } else if code[j].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return Some(tok + 2..j);
            }
        }
        j += 1;
    }
    Some(tok + 2..code.len())
}

/// Splits an argument range at top-level commas.
fn split_args(code: &[Token<'_>], range: Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = range.start;
    for i in range.clone() {
        match code[i].text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth <= 0 => {
                out.push(start..i);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < range.end {
        out.push(start..range.end);
    }
    out
}

fn callee_name(c: &CalleeRef) -> String {
    match c {
        CalleeRef::Bare(n) => n.clone(),
        CalleeRef::Path(p) => p.join("::"),
        CalleeRef::Method { name, .. } => name.clone(),
    }
}

/// Whether a call site is a configured sink. `Type::method` entries
/// require the receiver to resolve (by declared type or field spelling)
/// to that type.
fn is_sink_call(spec: &TaintSpec, st: &FnState, callee: &CalleeRef) -> bool {
    for entry in &spec.sink_calls {
        match entry.split_once("::") {
            None => {
                if callee_matches_name(callee, entry) {
                    return true;
                }
            }
            Some((ty, m)) => match callee {
                CalleeRef::Method { name, recv } if name == m => {
                    let recv_ok = match recv {
                        Some(r) => {
                            r.eq_ignore_ascii_case(ty)
                                || st.var_types.get(r.as_str()).is_some_and(|t| t == ty)
                        }
                        None => false,
                    };
                    if recv_ok {
                        return true;
                    }
                }
                CalleeRef::Path(p)
                    if p.len() >= 2 && p[p.len() - 2] == ty && p[p.len() - 1] == m =>
                {
                    return true;
                }
                _ => {}
            },
        }
    }
    false
}

fn callee_matches_name(callee: &CalleeRef, name: &str) -> bool {
    match callee {
        CalleeRef::Bare(n) => n == name,
        CalleeRef::Path(p) => p.last().is_some_and(|l| l == name),
        CalleeRef::Method { name: m, .. } => m == name,
    }
}

/// Which parameter bits a label mask names.
fn param_bits(mask: u64) -> Vec<u32> {
    (1..63).filter(|b| mask & (1u64 << b) != 0).collect()
}

/// Interprocedural step: labels flowing into callee sink-params.
/// Returns new (param-bit, exemplar) pairs for this caller.
fn propagate_calls(
    spec: &TaintSpec,
    files: &[FileCtx<'_>],
    graph: &CallGraph,
    gid: usize,
    states: &BTreeMap<usize, FnState>,
    carrier_fields: &BTreeSet<String>,
) -> Vec<(u32, Vec<String>)> {
    let mut out = Vec::new();
    let node = &graph.nodes[gid];
    let f = &files[node.file];
    let Some(st) = states.get(&gid) else { return out };
    let caller_q = f.parsed.fns[node.item].display_name();
    for edge in &graph.edges[gid] {
        let Some(callee_st) = states.get(&edge.to) else { continue };
        if callee_st.sink_params == 0 {
            continue;
        }
        let Some(args) = call_args(f.code, edge.tok) else { continue };
        let callee_node = &graph.nodes[edge.to];
        let callee_item = &files[callee_node.file].parsed.fns[callee_node.item];
        let has_self =
            callee_item.params.first().is_some_and(|p| p.name.as_deref() == Some("self"));
        let arg_ranges = split_args(f.code, args);
        for (ai, ar) in arg_ranges.iter().enumerate() {
            // Method calls bind the receiver to param 0 (`self`).
            let param_idx = if has_self { ai + 1 } else { ai };
            if param_idx >= 62 || callee_st.sink_params & (1 << (param_idx as u32 + 1)) == 0 {
                continue;
            }
            if range_sanitized(spec, f, ar.clone()) {
                continue;
            }
            let lbl = range_labels(spec, f, st, carrier_fields, ar.clone(), true);
            let chain_tail =
                callee_st.exemplars.get(&(param_idx as u32 + 1)).cloned().unwrap_or_default();
            let hop = format!(
                "`{caller_q}` passes a tainted argument to `{}` ({}:{})",
                callee_item.display_name(),
                f.rel,
                edge.line
            );
            for bit in param_bits(lbl) {
                let mut chain = vec![hop.clone()];
                chain.extend(chain_tail.iter().cloned());
                if chain.len() <= 12 {
                    out.push((bit, chain));
                }
            }
        }
    }
    out
}

/// Final reporting sweep for one function.
#[allow(clippy::too_many_arguments)]
fn findings(
    spec: &TaintSpec,
    files: &[FileCtx<'_>],
    graph: &CallGraph,
    gid: usize,
    states: &BTreeMap<usize, FnState>,
    carrier_fields: &BTreeSet<String>,
    sanctioned: &dyn Fn(usize, u32) -> bool,
    out: &mut Vec<Violation>,
) {
    let node = &graph.nodes[gid];
    let f = &files[node.file];
    let Some(st) = states.get(&gid) else { return };
    let severity = registry::find(&spec.lint).map_or(Severity::Error, |l| l.severity);
    let mut push = |line: u32, col: u32, message: String, trace: Vec<String>| {
        out.push(Violation {
            lint: spec.lint.clone(),
            severity: severity.name().to_string(),
            path: f.rel.to_string(),
            line,
            col,
            message,
            trace,
        });
    };

    // Direct sinks fed by SOURCE data.
    let calls = callgraph::extract_calls(f.code, f.parsed, node.item);
    for call in &calls {
        let Some(args) = call_args(f.code, call.tok) else { continue };
        if !is_sink_call(spec, st, &call.callee) {
            continue;
        }
        if range_sanitized(spec, f, args.clone()) {
            continue;
        }
        let lbl = range_labels(spec, f, st, carrier_fields, args, true);
        if lbl & SOURCE != 0 {
            push(
                call.line,
                call.col,
                format!(
                    "tainted value reaches sink `{}`; route it through a sanitizer \
                     or suppress with a reason",
                    callee_name(&call.callee)
                ),
                Vec::new(),
            );
        } else if lbl != 0 && sanctioned(node.file, call.line) {
            // Parameter taint reaches a pragma-sanctioned sink. The
            // pragma is what keeps every caller of this function clean,
            // so it must register as used: emit the finding it
            // suppresses.
            push(
                call.line,
                call.col,
                format!(
                    "parameter-tainted value reaches sanctioned sink `{}`",
                    callee_name(&call.callee)
                ),
                Vec::new(),
            );
        }
    }
    let macros = callgraph::extract_macros(f.code, f.parsed, node.item);
    for m in &macros {
        if !spec.sink_macros.contains(&m.name) {
            continue;
        }
        if range_sanitized(spec, f, m.args.clone()) {
            continue;
        }
        let lbl = range_labels(spec, f, st, carrier_fields, m.args.clone(), true);
        if lbl & SOURCE != 0 {
            push(
                m.line,
                m.col,
                format!(
                    "tainted value reaches sink macro `{}!`; sanitize it first \
                     or suppress with a reason",
                    m.name
                ),
                Vec::new(),
            );
        } else if lbl != 0 && sanctioned(node.file, m.line) {
            // See the sink-call case: the pragma sanctioning this sink
            // is load-bearing for every caller and must count as used.
            push(
                m.line,
                m.col,
                format!("parameter-tainted value reaches sanctioned sink macro `{}!`", m.name),
                Vec::new(),
            );
        }
    }

    // Calls whose argument feeds a callee parameter that reaches a sink.
    for edge in &graph.edges[gid] {
        let Some(callee_st) = states.get(&edge.to) else { continue };
        if callee_st.sink_params == 0 {
            continue;
        }
        let Some(args) = call_args(f.code, edge.tok) else { continue };
        let callee_node = &graph.nodes[edge.to];
        let callee_item = &files[callee_node.file].parsed.fns[callee_node.item];
        let has_self =
            callee_item.params.first().is_some_and(|p| p.name.as_deref() == Some("self"));
        for (ai, ar) in split_args(f.code, args).iter().enumerate() {
            let param_idx = if has_self { ai + 1 } else { ai };
            if param_idx >= 62 || callee_st.sink_params & (1 << (param_idx as u32 + 1)) == 0 {
                continue;
            }
            if range_sanitized(spec, f, ar.clone()) {
                continue;
            }
            let lbl = range_labels(spec, f, st, carrier_fields, ar.clone(), true);
            if lbl & SOURCE != 0 {
                let trace =
                    callee_st.exemplars.get(&(param_idx as u32 + 1)).cloned().unwrap_or_default();
                push(
                    edge.line,
                    edge.col,
                    format!(
                        "tainted argument flows into `{}`, whose parameter reaches a \
                         sink (see trace); sanitize before the call or suppress with \
                         a reason",
                        callee_item.display_name()
                    ),
                    trace,
                );
            }
        }
    }
}
