//! A hand-rolled, comment/string/raw-string-aware Rust token scanner.
//!
//! `vendor/` deliberately carries no `syn`, so the lint pass cannot parse
//! Rust properly; instead it lexes source into a flat token stream that is
//! precise about the things lints care about:
//!
//! * string/char/byte literals are opaque — an ident spelled inside a
//!   string never matches a lint pattern;
//! * raw strings (`r"…"`, `r#"…"#`, any number of hashes) and raw byte
//!   strings are handled, including embedded quotes;
//! * block comments nest (`/* /* */ */`) as in real Rust;
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`);
//! * float literals are distinguished from integers (for `no-float-eq`);
//! * line comments are kept as tokens so suppression pragmas can be read
//!   back out of the stream.
//!
//! The lexer never fails: unterminated constructs are consumed to end of
//! file and surface as ordinary tokens, which keeps the lint runnable on
//! half-written code.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including `r#raw` identifiers).
    Ident,
    /// A lifetime such as `'a` or `'_` (not a char literal).
    Lifetime,
    /// Integer literal (any base, any suffix except `f32`/`f64`).
    Int,
    /// Float literal (`1.0`, `1e3`, `2f64`, …).
    Float,
    /// String literal `"…"` (escapes included verbatim).
    Str,
    /// Raw string literal `r"…"` / `r#"…"#` (any hash depth), including
    /// raw byte strings.
    RawStr,
    /// Byte string literal `b"…"`.
    ByteStr,
    /// Char or byte-char literal (`'a'`, `'\n'`, `b'x'`).
    Char,
    /// Line comment (`//`, `///`, `//!`), text includes the slashes.
    LineComment,
    /// Block comment (`/* … */`), possibly nested.
    BlockComment,
    /// Punctuation / operator (multi-char operators kept whole: `::`,
    /// `==`, `!=`, `->`, …).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// What the token is.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl Token<'_> {
    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }
}

/// Multi-character operators recognized as single tokens, longest first.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining line/col. Multi-byte UTF-8
    /// continuation bytes do not advance the column (close enough for
    /// diagnostics; this repo is ASCII).
    fn bump(&mut self) {
        if let Some(b) = self.peek(0) {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else if b & 0xC0 != 0x80 {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into a token stream (whitespace dropped, comments kept).
pub fn tokenize(src: &str) -> Vec<Token<'_>> {
    let mut c = Cursor { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    while let Some(b) = c.peek(0) {
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }
        let (start, line, col) = (c.pos, c.line, c.col);
        let kind = scan_one(&mut c, b);
        out.push(Token { kind, text: &src[start..c.pos], line, col });
    }
    out
}

/// Scans exactly one token starting at `b`; the cursor ends one past it.
fn scan_one(c: &mut Cursor<'_>, b: u8) -> TokenKind {
    match b {
        b'/' if c.peek(1) == Some(b'/') => {
            while let Some(n) = c.peek(0) {
                if n == b'\n' {
                    break;
                }
                c.bump();
            }
            TokenKind::LineComment
        }
        b'/' if c.peek(1) == Some(b'*') => {
            c.bump_n(2);
            let mut depth = 1usize;
            while depth > 0 {
                match (c.peek(0), c.peek(1)) {
                    (Some(b'/'), Some(b'*')) => {
                        depth += 1;
                        c.bump_n(2);
                    }
                    (Some(b'*'), Some(b'/')) => {
                        depth -= 1;
                        c.bump_n(2);
                    }
                    (Some(_), _) => c.bump(),
                    (None, _) => break,
                }
            }
            TokenKind::BlockComment
        }
        b'r' | b'b' if starts_raw_string(c) => scan_raw_string(c),
        b'b' if c.peek(1) == Some(b'"') => {
            c.bump();
            scan_string(c);
            TokenKind::ByteStr
        }
        b'b' if c.peek(1) == Some(b'\'') => {
            c.bump();
            scan_char(c);
            TokenKind::Char
        }
        b'r' if c.peek(1) == Some(b'#') && c.peek(2).is_some_and(is_ident_start) => {
            c.bump_n(2);
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            TokenKind::Ident
        }
        b'"' => {
            scan_string(c);
            TokenKind::Str
        }
        b'\'' => scan_char_or_lifetime(c),
        _ if is_ident_start(b) => {
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            TokenKind::Ident
        }
        _ if b.is_ascii_digit() => scan_number(c),
        _ => {
            let rest = &c.src[c.pos..];
            for op in MULTI_PUNCT {
                if rest.starts_with(op) {
                    c.bump_n(op.len());
                    return TokenKind::Punct;
                }
            }
            // Consume the whole UTF-8 sequence so token slices always cut
            // at char boundaries (stray non-ASCII lexes as one Punct).
            c.bump();
            while c.peek(0).is_some_and(|n| n & 0xC0 == 0x80) {
                c.bump();
            }
            TokenKind::Punct
        }
    }
}

/// Whether the cursor sits on `r"`, `r#…#"`, `br"`, or `br#…#"`.
fn starts_raw_string(c: &Cursor<'_>) -> bool {
    let mut i = 1; // past the leading r or b
    if c.peek(0) == Some(b'b') {
        if c.peek(1) != Some(b'r') {
            return false;
        }
        i = 2;
    }
    while c.peek(i) == Some(b'#') {
        i += 1;
    }
    c.peek(i) == Some(b'"')
}

fn scan_raw_string(c: &mut Cursor<'_>) -> TokenKind {
    if c.peek(0) == Some(b'b') {
        c.bump();
    }
    c.bump(); // r
    let mut hashes = 0usize;
    while c.peek(0) == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    c.bump(); // opening quote
    loop {
        match c.peek(0) {
            None => break,
            Some(b'"') => {
                c.bump();
                let mut seen = 0usize;
                while seen < hashes && c.peek(0) == Some(b'#') {
                    seen += 1;
                    c.bump();
                }
                if seen == hashes {
                    break;
                }
            }
            Some(_) => c.bump(),
        }
    }
    TokenKind::RawStr
}

/// Consumes a `"…"` body starting at the opening quote.
fn scan_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    loop {
        match c.peek(0) {
            None => break,
            Some(b'\\') => c.bump_n(2),
            Some(b'"') => {
                c.bump();
                break;
            }
            Some(_) => c.bump(),
        }
    }
}

/// Consumes a `'…'` body starting at the opening quote.
fn scan_char(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    loop {
        match c.peek(0) {
            None => break,
            Some(b'\\') => c.bump_n(2),
            Some(b'\'') => {
                c.bump();
                break;
            }
            Some(_) => c.bump(),
        }
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) from `'\n'` (char).
fn scan_char_or_lifetime(c: &mut Cursor<'_>) -> TokenKind {
    match (c.peek(1), c.peek(2)) {
        // Escape sequence: definitely a char literal.
        (Some(b'\\'), _) => {
            scan_char(c);
            TokenKind::Char
        }
        // `'x'` — a one-character char literal (covers `'_'`).
        (Some(x), Some(b'\'')) if is_ident_continue(x) => {
            scan_char(c);
            TokenKind::Char
        }
        // `'ident` not closed by a quote — a lifetime.
        (Some(x), _) if is_ident_start(x) => {
            c.bump(); // quote
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            TokenKind::Lifetime
        }
        // Anything else (`'('`, `' '`, …) is a char literal.
        _ => {
            scan_char(c);
            TokenKind::Char
        }
    }
}

fn scan_number(c: &mut Cursor<'_>) -> TokenKind {
    let radix_prefixed = c.peek(0) == Some(b'0')
        && matches!(c.peek(1), Some(b'x') | Some(b'X') | Some(b'o') | Some(b'b'));
    if radix_prefixed {
        c.bump_n(2);
        while c.peek(0).is_some_and(|n| n.is_ascii_alphanumeric() || n == b'_') {
            c.bump();
        }
        return TokenKind::Int;
    }
    let mut float = false;
    while c.peek(0).is_some_and(|n| n.is_ascii_digit() || n == b'_') {
        c.bump();
    }
    // Fractional part: `1.0` is a float, `1.max(2)` is Int `.` Ident, and
    // range `1..2` is Int `..` Int.
    if c.peek(0) == Some(b'.') && c.peek(1) != Some(b'.') && !c.peek(1).is_some_and(is_ident_start)
    {
        float = true;
        c.bump();
        while c.peek(0).is_some_and(|n| n.is_ascii_digit() || n == b'_') {
            c.bump();
        }
    }
    // Exponent.
    if matches!(c.peek(0), Some(b'e') | Some(b'E')) {
        let sign = usize::from(matches!(c.peek(1), Some(b'+') | Some(b'-')));
        if c.peek(1 + sign).is_some_and(|n| n.is_ascii_digit()) {
            float = true;
            c.bump_n(1 + sign);
            while c.peek(0).is_some_and(|n| n.is_ascii_digit() || n == b'_') {
                c.bump();
            }
        }
    }
    // Suffix (`u64`, `f32`, …).
    let suffix_start = c.pos;
    while c.peek(0).is_some_and(is_ident_continue) {
        c.bump();
    }
    let suffix = &c.src[suffix_start..c.pos];
    if suffix == "f32" || suffix == "f64" {
        float = true;
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}
