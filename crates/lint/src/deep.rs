//! `--deep` driver: workspace-wide interprocedural passes.
//!
//! Three passes run over the shared call graph ([`crate::callgraph`]):
//!
//! * **panic-reachability** — BFS from the configured service entry
//!   points; any panicking construct (`.unwrap()` / `.expect()` /
//!   `panic!`-family macro / unguarded indexing) in a reachable function
//!   is an error, reported with the call chain from the nearest entry.
//! * **location-taint** — value-mode taint: raw coordinate types must
//!   not reach formatting/WAL/serde sinks except through sanctioned
//!   cloak/policy sanitizers.
//! * **determinism-taint** — carrier-mode taint: iteration order of
//!   hash containers (and wall-clock/thread-id reads) must not reach
//!   fingerprinted or serialized outputs.
//!
//! Sources, sinks, sanitizers, and entry points live in the checked-in
//! `lint-taint.toml` at the workspace root, parsed by the strict
//! TOML-subset reader below (unknown sections or keys are errors — the
//! same "no silent tolerance" stance the pragma parser takes).

use crate::callgraph::{self, CallGraph, FileCtx};
use crate::lexer::{self, Token, TokenKind};
use crate::parser::{self, ParsedFile};
use crate::registry;
use crate::report::Violation;
use crate::rules::FileRole;
use crate::taint::{self, TaintSpec};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Which deep passes to run (`--passes` CLI toggle).
#[derive(Debug, Clone, Copy)]
pub struct PassSet {
    /// Run `panic-reachability`.
    pub panic: bool,
    /// Run `location-taint`.
    pub location: bool,
    /// Run `determinism-taint`.
    pub determinism: bool,
}

impl PassSet {
    /// Every deep pass enabled (the `--deep` default).
    pub fn all() -> Self {
        PassSet { panic: true, location: true, determinism: true }
    }

    /// Parses a comma-separated list of deep lint names.
    ///
    /// # Errors
    /// A name that is not a registered deep lint.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut set = PassSet { panic: false, location: false, determinism: false };
        for name in s.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            match name {
                "panic-reachability" => set.panic = true,
                "location-taint" => set.location = true,
                "determinism-taint" => set.determinism = true,
                other => {
                    return Err(format!(
                        "unknown deep pass `{other}` (expected one of: {})",
                        registry::deep_lint_names().join(", ")
                    ));
                }
            }
        }
        Ok(set)
    }
}

/// Parsed `lint-taint.toml`: `[section]` → `key` → string list.
#[derive(Debug, Default)]
pub struct DeepConfig {
    sections: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

/// Allowed `(section, key)` pairs in `lint-taint.toml`.
const CONFIG_SCHEMA: &[(&str, &[&str])] = &[
    ("panic-reachability", &["entry-points"]),
    (
        "location-taint",
        &[
            "value-sources",
            "taint-methods",
            "source-calls",
            "sink-calls",
            "sink-macros",
            "sanitizer-calls",
            "sanitizer-types",
        ],
    ),
    (
        "determinism-taint",
        &[
            "carrier-sources",
            "order-methods",
            "source-calls",
            "sink-calls",
            "sink-macros",
            "sanitizer-calls",
            "sanitizer-types",
        ],
    ),
];

impl DeepConfig {
    /// Parses the TOML subset used by `lint-taint.toml`: `[section]`
    /// headers, `key = ["a", "b"]` string arrays (multi-line allowed),
    /// `#` comments. Unknown sections or keys are hard errors.
    ///
    /// # Errors
    /// Syntax errors, unknown sections, unknown keys.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = DeepConfig::default();
        let mut section = String::new();
        let mut pending: Option<(String, String, usize)> = None; // key, buffer, line
        for (ln, raw) in text.lines().enumerate() {
            let line = strip_comment(raw);
            let line = line.trim();
            if let Some((key, mut buf, start)) = pending.take() {
                buf.push(' ');
                buf.push_str(line);
                if brackets_balanced(&buf) {
                    cfg.insert(&section, &key, &buf, start)?;
                } else {
                    pending = Some((key, buf, start));
                }
                continue;
            }
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim();
                if !CONFIG_SCHEMA.iter().any(|(s, _)| *s == name) {
                    return Err(format!("lint-taint.toml:{}: unknown section `[{name}]`", ln + 1));
                }
                section = name.to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint-taint.toml:{}: expected `key = [...]`", ln + 1));
            };
            let key = key.trim().to_string();
            let value = value.trim().to_string();
            if brackets_balanced(&value) {
                cfg.insert(&section, &key, &value, ln + 1)?;
            } else {
                pending = Some((key, value, ln + 1));
            }
        }
        if let Some((key, _, start)) = pending {
            return Err(format!("lint-taint.toml:{start}: unterminated array for `{key}`"));
        }
        Ok(cfg)
    }

    fn insert(&mut self, section: &str, key: &str, value: &str, line: usize) -> Result<(), String> {
        if section.is_empty() {
            return Err(format!("lint-taint.toml:{line}: `{key}` outside any section"));
        }
        let allowed =
            CONFIG_SCHEMA.iter().find(|(s, _)| *s == section).map(|(_, keys)| *keys).unwrap_or(&[]);
        if !allowed.contains(&key) {
            return Err(format!(
                "lint-taint.toml:{line}: unknown key `{key}` in `[{section}]` \
                 (expected one of: {})",
                allowed.join(", ")
            ));
        }
        let inner = value
            .strip_prefix('[')
            .and_then(|v| v.strip_suffix(']'))
            .ok_or_else(|| format!("lint-taint.toml:{line}: `{key}` must be a string array"))?;
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let unquoted =
                part.strip_prefix('"').and_then(|p| p.strip_suffix('"')).ok_or_else(|| {
                    format!("lint-taint.toml:{line}: `{key}` entries must be double-quoted")
                })?;
            items.push(unquoted.to_string());
        }
        self.sections.entry(section.to_string()).or_default().insert(key.to_string(), items);
        Ok(())
    }

    fn list(&self, section: &str, key: &str) -> Vec<String> {
        self.sections.get(section).and_then(|s| s.get(key)).cloned().unwrap_or_default()
    }

    fn taint_spec(&self, lint: &str) -> TaintSpec {
        TaintSpec {
            lint: lint.to_string(),
            value_sources: self.list(lint, "value-sources"),
            carrier_sources: self.list(lint, "carrier-sources"),
            order_methods: self.list(lint, "order-methods"),
            taint_methods: self.list(lint, "taint-methods"),
            source_calls: self.list(lint, "source-calls"),
            sink_calls: self.list(lint, "sink-calls"),
            sink_macros: self.list(lint, "sink-macros"),
            sanitizer_calls: self.list(lint, "sanitizer-calls"),
            sanitizer_types: self.list(lint, "sanitizer-types"),
        }
    }
}

/// Drops a `#` comment unless the `#` sits inside a double-quoted string.
fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut in_str = false;
    for c in line.chars() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => break,
            _ => {}
        }
        out.push(c);
    }
    out
}

fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

/// One input file for the deep driver.
pub struct DeepFile {
    /// Workspace-relative path.
    pub rel: String,
    /// File contents.
    pub src: String,
    /// Crate directory name.
    pub crate_name: String,
    /// Path-derived role.
    pub role: FileRole,
}

/// Runs the enabled deep passes and returns raw (pre-suppression)
/// violations.
pub fn run(files: &[DeepFile], cfg: &DeepConfig, passes: &PassSet) -> Vec<Violation> {
    // Lex once per file. The full stream feeds the pragma collector (a
    // suppressed sink is *sanctioned*: it still reports locally — which
    // marks the pragma used — but does not feed interprocedural
    // summaries, so callers of a sanctioned boundary stay clean); the
    // comment-free stream feeds the parser and the passes.
    let full_tokens: Vec<Vec<Token<'_>>> = files.iter().map(|f| lexer::tokenize(&f.src)).collect();
    let suppressions: Vec<Vec<crate::pragma::Suppression>> =
        full_tokens.iter().map(|ts| crate::pragma::collect(ts).0).collect();
    let sanctioned = |file_idx: usize, lint: &str, line: u32| {
        suppressions[file_idx].iter().any(|s| {
            s.lints.iter().any(|l| l == lint) && (s.start_line..=s.end_line).contains(&line)
        })
    };
    let token_sets: Vec<Vec<Token<'_>>> = full_tokens
        .iter()
        .map(|ts| ts.iter().filter(|t| !t.is_comment()).copied().collect())
        .collect();
    let parsed: Vec<ParsedFile> = token_sets.iter().map(|c| parser::parse_items(c)).collect();
    let ctxs: Vec<FileCtx<'_>> = files
        .iter()
        .zip(token_sets.iter().zip(parsed.iter()))
        .map(|(f, (code, pf))| FileCtx {
            rel: &f.rel,
            crate_name: f.crate_name.clone(),
            module: callgraph::file_module_path(&f.rel),
            code,
            parsed: pf,
        })
        .collect();
    let graph = callgraph::build(&ctxs);

    // Functions eligible for analysis: real (non-test) library/binary
    // code with a body. Tests, benches, and examples are out of scope —
    // panicking and debug-printing there is idiomatic.
    let mut analyzed: BTreeSet<usize> = BTreeSet::new();
    for (gid, node) in graph.nodes.iter().enumerate() {
        let role = files[node.file].role;
        let item = &ctxs[node.file].parsed.fns[node.item];
        if matches!(role, FileRole::Lib | FileRole::Bin) && !item.in_test && item.body.is_some() {
            analyzed.insert(gid);
        }
    }

    let mut out = Vec::new();
    if passes.panic {
        panic_reachability(files, &ctxs, &graph, &analyzed, cfg, &mut out);
    }
    if passes.location {
        let spec = cfg.taint_spec("location-taint");
        let sp = |file_idx: usize, line: u32| sanctioned(file_idx, "location-taint", line);
        out.extend(taint::run(&spec, &ctxs, &graph, &analyzed, &sp));
    }
    if passes.determinism {
        let spec = cfg.taint_spec("determinism-taint");
        let sp = |file_idx: usize, line: u32| sanctioned(file_idx, "determinism-taint", line);
        out.extend(taint::run(&spec, &ctxs, &graph, &analyzed, &sp));
    }
    out
}

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// A panicking construct found in a function body.
struct PanicSite {
    line: u32,
    col: u32,
    what: String,
}

/// BFS from configured entry points; report panic sites in every
/// reachable function with the call chain as the trace.
fn panic_reachability(
    files: &[DeepFile],
    ctxs: &[FileCtx<'_>],
    graph: &CallGraph,
    analyzed: &BTreeSet<usize>,
    cfg: &DeepConfig,
    out: &mut Vec<Violation>,
) {
    let entries = cfg.list("panic-reachability", "entry-points");
    let mut queue: VecDeque<usize> = VecDeque::new();
    // parent[gid] = (caller gid, call line) for trace reconstruction.
    let mut parent: BTreeMap<usize, (usize, u32)> = BTreeMap::new();
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    for (gid, node) in graph.nodes.iter().enumerate() {
        if !analyzed.contains(&gid) {
            continue;
        }
        let item = &ctxs[node.file].parsed.fns[node.item];
        let matches_entry = entries.iter().any(|e| match e.split_once("::") {
            Some((ty, m)) => item.self_ty.as_deref() == Some(ty) && item.name == m,
            None => item.self_ty.is_none() && item.name == *e,
        });
        if matches_entry {
            visited.insert(gid);
            queue.push_back(gid);
        }
    }
    while let Some(gid) = queue.pop_front() {
        for edge in &graph.edges[gid] {
            if analyzed.contains(&edge.to) && visited.insert(edge.to) {
                parent.insert(edge.to, (gid, edge.line));
                queue.push_back(edge.to);
            }
        }
    }

    for &gid in &visited {
        let node = &graph.nodes[gid];
        let ctx = &ctxs[node.file];
        let item = &ctx.parsed.fns[node.item];
        let sites = panic_sites(ctx, node.item);
        if sites.is_empty() {
            continue;
        }
        // Reconstruct entry → … → this function.
        let mut chain = vec![gid];
        let mut cur = gid;
        while let Some(&(p, _)) = parent.get(&cur) {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        let mut trace = Vec::new();
        for (hop, &g) in chain.iter().enumerate() {
            let n = &graph.nodes[g];
            let it = &ctxs[n.file].parsed.fns[n.item];
            if hop == 0 {
                trace.push(format!(
                    "entry point `{}` ({}:{})",
                    it.display_name(),
                    files[n.file].rel,
                    it.line
                ));
            } else {
                // The call site lives in the caller's file.
                let caller = &graph.nodes[chain[hop - 1]];
                let call_line = parent.get(&g).map_or(it.line, |&(_, l)| l);
                trace.push(format!(
                    "calls `{}` ({}:{})",
                    it.display_name(),
                    files[caller.file].rel,
                    call_line
                ));
            }
        }
        let entry_name = {
            let n = &graph.nodes[chain[0]];
            ctxs[n.file].parsed.fns[n.item].display_name()
        };
        for site in sites {
            out.push(Violation {
                lint: "panic-reachability".to_string(),
                severity: "error".to_string(),
                path: files[node.file].rel.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "{} in `{}` is reachable from service entry point `{entry_name}`; \
                     return an error instead or suppress with a reason",
                    site.what,
                    item.display_name()
                ),
                trace: trace.clone(),
            });
        }
    }
}

/// Collects panicking constructs in one function's own tokens.
fn panic_sites(ctx: &FileCtx<'_>, fn_idx: usize) -> Vec<PanicSite> {
    let code = ctx.code;
    let mut out = Vec::new();
    let owned: Vec<usize> = ctx.parsed.owned_tokens(fn_idx).collect();
    for &i in &owned {
        let t = &code[i];
        // `.unwrap(` / `.expect(`
        if t.kind == TokenKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && code[i - 1].is_punct(".")
            && code.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            out.push(PanicSite { line: t.line, col: t.col, what: format!("`.{}()`", t.text) });
            continue;
        }
        // `panic!(` family
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text)
            && code.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            out.push(PanicSite { line: t.line, col: t.col, what: format!("`{}!`", t.text) });
            continue;
        }
        // Indexing: `recv[expr]` — `[` preceded by an identifier or a
        // closing bracket, i.e. an expression position (never `#[`,
        // array literals, or type syntax).
        if t.is_punct("[") && i > 0 {
            let prev = &code[i - 1];
            let expr_pos = (prev.kind == TokenKind::Ident
                && !parser::CALL_KEYWORDS.contains(&prev.text))
                || prev.is_punct(")")
                || prev.is_punct("]");
            if expr_pos {
                if let Some(site) = indexing_site(ctx, &owned, i) {
                    out.push(site);
                }
            }
        }
    }
    out
}

/// Classifies an indexing expression at `open` (`[`); returns a site
/// only when no guard heuristic applies.
fn indexing_site(ctx: &FileCtx<'_>, owned: &[usize], open: usize) -> Option<PanicSite> {
    let code = ctx.code;
    let prev = &code[open - 1];
    if prev.kind == TokenKind::Ident && parser::CALL_KEYWORDS.contains(&prev.text) {
        return None;
    }
    // Find the matching `]`.
    let mut depth = 0usize;
    let mut close = open;
    while close < code.len() {
        if code[close].is_punct("[") {
            depth += 1;
        } else if code[close].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        close += 1;
    }
    if close >= code.len() || close == open + 1 {
        return None; // unterminated or `[]` (array literal in expr position)
    }
    let idx_tokens = &code[open + 1..close];
    // Guard: constant indices (fixed-size array access patterns).
    if idx_tokens.iter().all(|t| t.kind == TokenKind::Int) {
        return None;
    }
    // Guard: ranges and length-derived arithmetic in the index.
    if idx_tokens.iter().any(|t| {
        t.is_punct("..")
            || t.is_punct("..=")
            || t.is_punct("%")
            || (t.kind == TokenKind::Ident
                && (t.text == "len" || t.text == "min" || t.text == "clamp"))
    }) {
        return None;
    }
    // Guard: single-ident index that is a for-loop binding in this fn.
    if idx_tokens.len() == 1 && idx_tokens[0].kind == TokenKind::Ident {
        let var = idx_tokens[0].text;
        for w in owned.windows(2) {
            if code[w[0]].is_ident("for") && code[w[1]].is_ident(var) {
                return None;
            }
        }
    }
    // Guard: receiver has a length/emptiness check somewhere in this fn.
    if prev.kind == TokenKind::Ident {
        let recv = prev.text;
        for w in owned.windows(3) {
            if code[w[0]].is_ident(recv)
                && code[w[1]].is_punct(".")
                && (code[w[2]].is_ident("len")
                    || code[w[2]].is_ident("is_empty")
                    || code[w[2]].is_ident("get"))
            {
                return None;
            }
        }
    }
    Some(PanicSite {
        line: code[open].line,
        col: code[open].col,
        what: "unguarded indexing".to_string(),
    })
}
