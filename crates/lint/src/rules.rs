//! Rule implementations: token-pattern matchers for every registered lint.

use crate::lexer::{Token, TokenKind};
use crate::registry::{self, Severity};
use crate::report::Violation;

/// What kind of source a file is — decides which lints apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library source (`crates/*/src/**`, root `src/**`).
    Lib,
    /// Binary targets (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Integration tests (`tests/**`).
    Test,
    /// Examples (`examples/**`).
    Example,
    /// Benchmark harness code (`benches/**`, all of `crates/bench`).
    Bench,
}

/// Per-file context handed to every rule.
pub struct FileInfo<'a> {
    /// Workspace-relative `/`-separated path.
    pub path: &'a str,
    /// Crate directory name (`core`, `tree`, …; `root` for the top-level
    /// package).
    pub crate_name: &'a str,
    /// Role of the file.
    pub role: FileRole,
    /// Non-comment tokens.
    pub code: Vec<Token<'a>>,
    /// Line ranges of `#[cfg(test)]` items (inline test modules).
    pub test_regions: Vec<(u32, u32)>,
}

impl FileInfo<'_> {
    /// Effective role at a given line: `#[cfg(test)]` regions inside a
    /// library file count as test code.
    pub fn role_at(&self, line: u32) -> FileRole {
        if self.role == FileRole::Lib
            && self.test_regions.iter().any(|&(s, e)| (s..=e).contains(&line))
        {
            FileRole::Test
        } else {
            self.role
        }
    }

    fn push(&self, out: &mut Vec<Violation>, lint: &'static str, at: &Token<'_>, message: String) {
        let severity = registry::find(lint).map_or(Severity::Error, |l| l.severity);
        out.push(Violation {
            lint: lint.to_string(),
            severity: severity.name().to_string(),
            path: self.path.to_string(),
            line: at.line,
            col: at.col,
            message,
            trace: Vec::new(),
        });
    }
}

/// Whether `lint` applies to code at `role` in `crate_name`.
pub fn applies(lint: &str, crate_name: &str, role: FileRole) -> bool {
    use FileRole::{Bin, Example, Lib};
    match lint {
        "no-unwrap-in-lib"
        | "no-panic-in-lib"
        | "no-println-in-lib"
        | "no-float-eq"
        | "no-hashmap-in-serialized-output"
        | "forbid-unsafe-header" => role == Lib,
        // Replayability is global: even tests must derive their seeds.
        "no-unseeded-rng" => true,
        "no-raw-thread-spawn" => matches!(role, Lib | Bin | Example) && crate_name != "parallel",
        "no-unchecked-io-in-runtime" => role == Lib && crate_name == "runtime",
        // Path-scoped further by the matcher: storage.rs (the seam's real
        // filesystem implementation) is exempt.
        "no-raw-fs-in-runtime" => role == Lib && crate_name == "runtime",
        "no-wall-clock-in-dp" => role == Lib && !matches!(crate_name, "metrics" | "bench"),
        // Path-scoped to the cases module by the matcher itself.
        "no-wall-clock-in-bench-cases" => crate_name == "bench",
        _ => true,
    }
}

/// Computes the line ranges of `#[cfg(test)]`-gated items.
pub fn test_regions(code: &[Token<'_>]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if is_seq(code, i, &["#", "[", "cfg", "(", "test", ")", "]"]) {
            let start_line = code[i].line;
            let mut j = i + 7;
            // Skip any further attributes on the same item.
            while j < code.len() && code[j].is_punct("#") {
                j = skip_attribute(code, j);
            }
            // The item runs to its first `;` before a brace, or to the
            // matching `}` of its first `{`.
            let mut depth = 0usize;
            while j < code.len() {
                let t = &code[j];
                if t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_punct(";") && depth == 0 {
                    break;
                }
                j += 1;
            }
            let end_line = code.get(j).map_or(start_line, |t| t.line);
            regions.push((start_line, end_line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// Skips one `#[…]` attribute starting at the `#`; returns the index one
/// past its closing `]`.
fn skip_attribute(code: &[Token<'_>], at: usize) -> usize {
    let mut j = at + 1;
    if j < code.len() && code[j].is_punct("!") {
        j += 1;
    }
    if j >= code.len() || !code[j].is_punct("[") {
        return at + 1;
    }
    let mut depth = 0usize;
    while j < code.len() {
        if code[j].is_punct("[") {
            depth += 1;
        } else if code[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    code.len()
}

/// Identifiers whose calls produce `io::Result` values in std's fs/io
/// surface (the vocabulary WAL/checkpoint code actually uses).
const IO_IDENTS: &[&str] = &[
    "write",
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
    "read",
    "read_to_end",
    "read_exact",
    "create",
    "open",
    "rename",
    "remove_file",
    "read_dir",
    "set_len",
    "seek",
    "metadata",
    "create_dir_all",
    "copy",
    "File",
    "OpenOptions",
];

/// Scans backward from an `unwrap`/`expect` token for an io-returning call
/// within the same statement (bounded at `;`/`{`/`}` and a small token
/// budget, so unrelated earlier statements never trigger it).
fn io_call_upstream<'a>(code: &[Token<'a>], at: usize) -> Option<&'a str> {
    let mut j = at;
    let mut budget = 12usize;
    while j > 0 && budget > 0 {
        j -= 1;
        let t = &code[j];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return None;
        }
        if t.kind == TokenKind::Ident && IO_IDENTS.contains(&t.text) {
            return Some(t.text);
        }
        budget -= 1;
    }
    None
}

fn is_seq(code: &[Token<'_>], at: usize, pattern: &[&str]) -> bool {
    pattern.iter().enumerate().all(|(o, want)| code.get(at + o).is_some_and(|t| t.text == *want))
}

/// Runs every applicable rule over one file, appending findings.
pub fn run_all(info: &FileInfo<'_>, out: &mut Vec<Violation>) {
    let code = info.code.as_slice();
    let on = |lint: &str, line: u32| applies(lint, info.crate_name, info.role_at(line));
    // The bench timing contract is per-module: only case bodies
    // (crates/bench/src/cases.rs and any cases/ submodule) are barred
    // from the raw clock; the harness in suite.rs owns the timer.
    let in_bench_cases = info.path.ends_with("/cases.rs") || info.path.contains("/cases/");

    for (i, t) in code.iter().enumerate() {
        // no-unwrap-in-lib: `.unwrap()` / `.expect(` and path forms.
        if t.kind == TokenKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && (code[i - 1].is_punct(".") || code[i - 1].is_punct("::"))
            && code.get(i + 1).is_some_and(|n| n.is_punct("("))
            && on("no-unwrap-in-lib", t.line)
        {
            info.push(
                out,
                "no-unwrap-in-lib",
                t,
                format!(
                    "`.{}()` in library code; return a typed error (`CoreError`, …) or \
                     suppress with a reasoned pragma if provably infallible",
                    t.text
                ),
            );
        }

        // no-unchecked-io-in-runtime: unwrap/expect on the result of an
        // io-returning call inside lbs-runtime durability code.
        if t.kind == TokenKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && code[i - 1].is_punct(".")
            && code.get(i + 1).is_some_and(|n| n.is_punct("("))
            && on("no-unchecked-io-in-runtime", t.line)
        {
            if let Some(source) = io_call_upstream(code, i) {
                info.push(
                    out,
                    "no-unchecked-io-in-runtime",
                    t,
                    format!(
                        "`.{}()` on the result of `{source}`; io failures in WAL/checkpoint \
                         code must propagate as `RuntimeError::Io` (use `?`)",
                        t.text
                    ),
                );
            }
        }

        // no-raw-fs-in-runtime: durability code must reach the disk only
        // through the StorageBackend seam so the deterministic fault
        // layer sees every io. Fires on `fs::…` paths (covering
        // `std::fs::…`), `File::…`, and `OpenOptions` — everywhere in
        // lbs-runtime library code except storage.rs, the seam's one
        // sanctioned real-filesystem implementation.
        if t.kind == TokenKind::Ident
            && !info.path.ends_with("/storage.rs")
            && (((t.text == "fs" || t.text == "File")
                && code.get(i + 1).is_some_and(|n| n.is_punct("::")))
                || t.text == "OpenOptions")
            && on("no-raw-fs-in-runtime", t.line)
        {
            info.push(
                out,
                "no-raw-fs-in-runtime",
                t,
                format!(
                    "raw `{}` io in runtime durability code bypasses the StorageBackend \
                     seam (and every storage-fault sweep with it); route the operation \
                     through the backend handle instead",
                    t.text
                ),
            );
        }

        // no-panic-in-lib: panic-family macros.
        if t.kind == TokenKind::Ident
            && matches!(t.text, "panic" | "unreachable" | "todo" | "unimplemented")
            && code.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && on("no-panic-in-lib", t.line)
        {
            info.push(
                out,
                "no-panic-in-lib",
                t,
                format!("`{}!` in library code; return a typed error instead", t.text),
            );
        }

        // no-unseeded-rng: ambient entropy sources.
        if t.kind == TokenKind::Ident
            && matches!(t.text, "thread_rng" | "from_entropy" | "OsRng")
            && on("no-unseeded-rng", t.line)
        {
            info.push(
                out,
                "no-unseeded-rng",
                t,
                format!("`{}` breaks master-seed replay; derive seeds via `derive_seed`", t.text),
            );
        }

        // no-raw-thread-spawn: `thread::spawn` outside lbs-parallel.
        if t.is_ident("thread")
            && code.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && code.get(i + 2).is_some_and(|n| n.is_ident("spawn"))
            && on("no-raw-thread-spawn", t.line)
        {
            info.push(
                out,
                "no-raw-thread-spawn",
                t,
                "raw `thread::spawn`; threads are created only by `lbs-parallel::engine`"
                    .to_string(),
            );
        }

        // no-wall-clock-in-dp: `Instant::now` / any `SystemTime` use.
        if on("no-wall-clock-in-dp", t.line) {
            if t.is_ident("Instant")
                && code.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && code.get(i + 2).is_some_and(|n| n.is_ident("now"))
            {
                info.push(
                    out,
                    "no-wall-clock-in-dp",
                    t,
                    "`Instant::now` outside lbs-metrics/bench; DP outputs must not \
                     depend on wall clocks"
                        .to_string(),
                );
            }
            if t.is_ident("SystemTime") {
                info.push(
                    out,
                    "no-wall-clock-in-dp",
                    t,
                    "`SystemTime` outside lbs-metrics/bench; DP outputs must not \
                     depend on wall clocks"
                        .to_string(),
                );
            }
        }

        // no-wall-clock-in-bench-cases: bench case bodies measure only
        // through the harness Sampler, never the raw clock.
        if in_bench_cases && on("no-wall-clock-in-bench-cases", t.line) {
            let is_instant_now = t.is_ident("Instant")
                && code.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && code.get(i + 2).is_some_and(|n| n.is_ident("now"));
            if is_instant_now || t.is_ident("SystemTime") {
                info.push(
                    out,
                    "no-wall-clock-in-bench-cases",
                    t,
                    format!(
                        "`{}` in a bench case body; wrap the measured region in \
                         `sampler.sample(..)` so it shares the harness timer and \
                         host calibration",
                        t.text
                    ),
                );
            }
        }

        // no-float-eq: ==/!= adjacent to a float literal.
        if t.kind == TokenKind::Punct
            && (t.text == "==" || t.text == "!=")
            && on("no-float-eq", t.line)
        {
            let left_float = i > 0 && code[i - 1].kind == TokenKind::Float;
            let right_float = match code.get(i + 1) {
                Some(n) if n.kind == TokenKind::Float => true,
                Some(n) if n.is_punct("-") => {
                    code.get(i + 2).is_some_and(|m| m.kind == TokenKind::Float)
                }
                _ => false,
            };
            if left_float || right_float {
                info.push(
                    out,
                    "no-float-eq",
                    t,
                    format!("`{}` against a float literal; compare with an epsilon", t.text),
                );
            }
        }

        // no-println-in-lib: stdout/stderr macros.
        if t.kind == TokenKind::Ident
            && matches!(t.text, "println" | "print" | "eprintln" | "eprint" | "dbg")
            && code.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && on("no-println-in-lib", t.line)
        {
            info.push(
                out,
                "no-println-in-lib",
                t,
                format!("`{}!` in library code; write to an injected `io::Write` sink", t.text),
            );
        }
    }

    hashmap_in_serialized(info, out);
    forbid_unsafe_header(info, out);
}

/// `no-hashmap-in-serialized-output`: HashMap/HashSet fields inside
/// `#[derive(… Serialize …)]` items, unless `#[serde(skip…)]`-marked.
fn hashmap_in_serialized(info: &FileInfo<'_>, out: &mut Vec<Violation>) {
    let code = info.code.as_slice();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].is_punct("#") && is_seq(code, i + 1, &["[", "derive", "("])) {
            i += 1;
            continue;
        }
        let after_attr = skip_attribute(code, i);
        let derives_serialize =
            code[i..after_attr].iter().any(|t| t.is_ident("Serialize") || t.is_ident("Serializer"));
        i = after_attr;
        if !derives_serialize {
            continue;
        }
        // Skip any further attributes, then find the item body.
        let mut j = after_attr;
        while j < code.len() && code[j].is_punct("#") {
            j = skip_attribute(code, j);
        }
        // Find the opening `{` of the struct/enum body (bail at `;` for
        // unit/tuple structs — tuple bodies use parens and are rare).
        while j < code.len() && !code[j].is_punct("{") && !code[j].is_punct(";") {
            j += 1;
        }
        if j >= code.len() || code[j].is_punct(";") {
            continue;
        }
        // Walk the body; `#[serde(skip…)]` shields the following field.
        let mut depth = 0usize;
        let mut skip_shield = false;
        while j < code.len() {
            let t = &code[j];
            if t.is_punct("#") && code.get(j + 1).is_some_and(|n| n.is_punct("[")) {
                let end = skip_attribute(code, j);
                let is_serde_skip = code[j..end].iter().any(|a| a.is_ident("serde"))
                    && code[j..end]
                        .iter()
                        .any(|a| a.is_ident("skip") || a.is_ident("skip_serializing"));
                if is_serde_skip {
                    skip_shield = true;
                }
                j = end;
                continue;
            }
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_punct(",") && depth == 1 {
                skip_shield = false;
            } else if (t.is_ident("HashMap") || t.is_ident("HashSet"))
                && !skip_shield
                && applies("no-hashmap-in-serialized-output", info.crate_name, info.role_at(t.line))
            {
                info.push(
                    out,
                    "no-hashmap-in-serialized-output",
                    t,
                    format!(
                        "`{}` field in a `Serialize` type: hash iteration order makes \
                         serialized output nondeterministic; use BTreeMap/BTreeSet or \
                         `#[serde(skip)]`",
                        t.text
                    ),
                );
            }
            j += 1;
        }
        i = j;
    }
}

/// `forbid-unsafe-header`: every crate root must open with
/// `#![forbid(unsafe_code)]`.
fn forbid_unsafe_header(info: &FileInfo<'_>, out: &mut Vec<Violation>) {
    let is_crate_root = info.path == "src/lib.rs" || info.path.ends_with("/src/lib.rs");
    if !is_crate_root || !applies("forbid-unsafe-header", info.crate_name, info.role) {
        return;
    }
    let code = info.code.as_slice();
    let found = (0..code.len())
        .any(|i| is_seq(code, i, &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"]));
    if !found {
        let at = Token { kind: TokenKind::Punct, text: "", line: 1, col: 1 };
        info.push(
            out,
            "forbid-unsafe-header",
            &at,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}
