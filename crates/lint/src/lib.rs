//! `lbs-lint`: a workspace-aware static-analysis pass for the invariants
//! the compiler cannot see.
//!
//! The reproduction's core guarantees — bit-identical `Bulk_dp` outputs
//! under any worker count, replayable master seeds, panic containment in
//! the work-stealing engine — are *behavioral* properties. This crate
//! makes them checkable on every commit: it lexes every Rust file in the
//! workspace with a hand-rolled scanner ([`lexer`]), applies a registry
//! of token-pattern lints ([`registry`], [`rules`]), honors reasoned
//! suppression pragmas ([`pragma`]), and renders human or JSON
//! diagnostics ([`report`]).
//!
//! Entry points: [`lint_workspace`] (used by `lbs lint`, CI, and
//! `tests/lint_clean.rs`), [`lint_source`] (single in-memory file; used
//! by the rule-fixture tests), and the interprocedural drivers
//! [`lint_workspace_deep`] / [`lint_sources_deep`] behind `lbs lint
//! --deep`, which add a call graph ([`callgraph`]) over parsed items
//! ([`parser`]) and run the panic-reachability and taint passes
//! ([`deep`], [`taint`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod deep;
pub mod lexer;
pub mod parser;
pub mod pragma;
pub mod registry;
pub mod report;
pub mod rules;
pub mod taint;

pub use deep::PassSet;
pub use registry::{LintDef, Severity, LINTS};
pub use report::{LintReport, Violation};
pub use rules::FileRole;

use rules::FileInfo;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Failures of the lint *driver* (I/O and traversal) — distinct from
/// lint findings, which are data in the [`LintReport`].
#[derive(Debug)]
pub enum LintError {
    /// Filesystem error while walking or reading the workspace.
    Io(String),
    /// `root` does not look like the workspace root.
    NotAWorkspace(PathBuf),
    /// `lint-taint.toml` is missing or malformed (deep runs only).
    Config(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(msg) => write!(f, "lint io error: {msg}"),
            LintError::NotAWorkspace(p) => {
                write!(f, "{} is not the workspace root (no Cargo.toml + crates/)", p.display())
            }
            LintError::Config(msg) => write!(f, "lint config error: {msg}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Directories never scanned (vendored stand-ins, build output, VCS).
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", ".claude"];

/// Lints every Rust file under `root` (the workspace root) and returns
/// the aggregate report, sorted canonically.
///
/// # Errors
/// [`LintError::NotAWorkspace`] if `root` lacks `Cargo.toml`/`crates`;
/// [`LintError::Io`] on unreadable files or directories.
pub fn lint_workspace(root: &Path) -> Result<LintReport, LintError> {
    if !root.join("Cargo.toml").is_file() || !root.join("crates").is_dir() {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort();

    let mut report = LintReport::default();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| LintError::Io(format!("{rel}: {e}")))?;
        let file_report = lint_source(rel, &src);
        report.files_scanned += 1;
        report.suppressed += file_report.suppressed;
        report.violations.extend(file_report.violations);
    }
    report.sort();
    Ok(report)
}

/// Lints a single file given its workspace-relative path (which decides
/// the crate and role) and source text. Shallow rules only: pragmas
/// naming deep lints are exempt from the unused-suppression check here
/// (those lints cannot fire without `--deep`), but their names must
/// still be known to the registry or the pragma is malformed.
pub fn lint_source(rel_path: &str, src: &str) -> LintReport {
    let tokens = lexer::tokenize(src);
    let raw = shallow_raw(rel_path, &tokens);
    // Without --deep, every deep lint is inactive.
    let (violations, suppressed) = apply_pragmas(rel_path, &tokens, raw, &registry::is_deep);
    let mut report = LintReport { files_scanned: 1, violations, suppressed };
    report.sort();
    report
}

/// Runs the shallow (file-local) rules and returns raw violations.
fn shallow_raw(rel_path: &str, tokens: &[lexer::Token<'_>]) -> Vec<Violation> {
    let (crate_name, role) = classify(rel_path);
    let code: Vec<lexer::Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).copied().collect();
    let test_regions = rules::test_regions(&code);
    let info = FileInfo { path: rel_path, crate_name: &crate_name, role, code, test_regions };
    let mut raw = Vec::new();
    rules::run_all(&info, &mut raw);
    raw
}

/// Applies suppression pragmas to raw violations and appends the two
/// meta-lints. `inactive(lint)` marks lints that *could not have fired*
/// in this run (e.g. deep lints in a shallow run, or toggled-off deep
/// passes): a pragma naming one is exempt from unused-suppression, but
/// unknown names still fail as malformed in every mode.
fn apply_pragmas(
    rel_path: &str,
    tokens: &[lexer::Token<'_>],
    raw: Vec<Violation>,
    inactive: &dyn Fn(&str) -> bool,
) -> (Vec<Violation>, usize) {
    let (suppressions, issues) = pragma::collect(tokens);

    let mut used = vec![false; suppressions.len()];
    let mut violations = Vec::new();
    let mut suppressed = 0usize;
    for v in raw {
        let hit = suppressions.iter().enumerate().find(|(_, s)| {
            s.lints.iter().any(|l| l == &v.lint) && (s.start_line..=s.end_line).contains(&v.line)
        });
        match hit {
            Some((idx, _)) => {
                used[idx] = true;
                suppressed += 1;
            }
            None => violations.push(v),
        }
    }

    // Malformed pragmas are errors; unused pragmas are warnings.
    for issue in issues {
        violations.push(Violation {
            lint: registry::MALFORMED_PRAGMA.to_string(),
            severity: Severity::Error.name().to_string(),
            path: rel_path.to_string(),
            line: issue.line,
            col: issue.col,
            message: issue.message,
            trace: Vec::new(),
        });
    }
    for (s, was_used) in suppressions.iter().zip(&used) {
        if !was_used && !s.lints.iter().any(|l| inactive(l)) {
            violations.push(Violation {
                lint: registry::UNUSED_SUPPRESSION.to_string(),
                severity: Severity::Warn.name().to_string(),
                path: rel_path.to_string(),
                line: s.line,
                col: 1,
                message: format!(
                    "pragma for {} suppresses nothing on lines {}..={}; delete it",
                    s.lints.join(", "),
                    s.start_line,
                    s.end_line
                ),
                trace: Vec::new(),
            });
        }
    }
    (violations, suppressed)
}

/// Deep (interprocedural) lint over the workspace at `root`: shallow
/// rules plus the call-graph passes enabled in `passes`, configured by
/// `lint-taint.toml` at the workspace root.
///
/// # Errors
/// [`LintError::NotAWorkspace`], [`LintError::Io`], or
/// [`LintError::Config`] when `lint-taint.toml` is missing/invalid.
pub fn lint_workspace_deep(root: &Path, passes: &PassSet) -> Result<LintReport, LintError> {
    if !root.join("Cargo.toml").is_file() || !root.join("crates").is_dir() {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }
    let config = std::fs::read_to_string(root.join("lint-taint.toml"))
        .map_err(|e| LintError::Config(format!("lint-taint.toml: {e}")))?;
    let mut rels = Vec::new();
    collect_rust_files(root, root, &mut rels)?;
    rels.sort();
    let mut files = Vec::new();
    for rel in rels {
        let src = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| LintError::Io(format!("{rel}: {e}")))?;
        files.push((rel, src));
    }
    lint_sources_deep(&files, &config, passes)
}

/// Deep lint over in-memory sources (fixture tests use this): shallow
/// rules plus the enabled deep passes, with deep-aware suppression.
///
/// # Errors
/// [`LintError::Config`] when the config text is invalid.
pub fn lint_sources_deep(
    files: &[(String, String)],
    config: &str,
    passes: &PassSet,
) -> Result<LintReport, LintError> {
    let cfg = deep::DeepConfig::parse(config).map_err(LintError::Config)?;
    let deep_files: Vec<deep::DeepFile> = files
        .iter()
        .map(|(rel, src)| {
            let (crate_name, role) = classify(rel);
            deep::DeepFile { rel: rel.clone(), src: src.clone(), crate_name, role }
        })
        .collect();
    let mut by_file: BTreeMap<String, Vec<Violation>> = BTreeMap::new();
    for v in deep::run(&deep_files, &cfg, passes) {
        by_file.entry(v.path.clone()).or_default().push(v);
    }

    // A deep lint whose pass is toggled off cannot fire: exempt its
    // pragmas from unused-suppression, like deep lints in shallow mode.
    let inactive = |lint: &str| match lint {
        "panic-reachability" => !passes.panic,
        "location-taint" => !passes.location,
        "determinism-taint" => !passes.determinism,
        _ => false,
    };

    let mut report = LintReport::default();
    for (rel, src) in files {
        let tokens = lexer::tokenize(src);
        let mut raw = shallow_raw(rel, &tokens);
        raw.extend(by_file.remove(rel.as_str()).unwrap_or_default());
        let (violations, suppressed) = apply_pragmas(rel, &tokens, raw, &inactive);
        report.files_scanned += 1;
        report.suppressed += suppressed;
        report.violations.extend(violations);
    }
    report.sort();
    Ok(report)
}

/// Derives (crate, role) from a workspace-relative path.
fn classify(rel: &str) -> (String, FileRole) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest): (&str, &[&str]) = if parts.first() == Some(&"crates") {
        (parts.get(1).copied().unwrap_or(""), parts.get(2..).unwrap_or(&[]))
    } else {
        ("root", &parts[..])
    };
    // The bench crate is harness code end to end.
    if crate_name == "bench" {
        return (crate_name.to_string(), FileRole::Bench);
    }
    let role = match rest.first().copied() {
        Some("tests") => FileRole::Test,
        Some("examples") => FileRole::Example,
        Some("benches") => FileRole::Bench,
        Some("src") => match rest.get(1).copied() {
            Some("bin") => FileRole::Bin,
            Some("main.rs") => FileRole::Bin,
            _ => FileRole::Lib,
        },
        _ => FileRole::Lib,
    };
    (crate_name.to_string(), role)
}

/// Recursively collects workspace-relative paths of `.rs` files.
fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(e.to_string()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rust_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_assigns_roles() {
        assert_eq!(classify("crates/core/src/dp_fast.rs"), ("core".into(), FileRole::Lib));
        assert_eq!(classify("crates/cli/src/bin/lbs.rs"), ("cli".into(), FileRole::Bin));
        assert_eq!(classify("crates/geom/tests/properties.rs"), ("geom".into(), FileRole::Test));
        assert_eq!(classify("crates/bench/src/lib.rs"), ("bench".into(), FileRole::Bench));
        assert_eq!(classify("tests/differential.rs"), ("root".into(), FileRole::Test));
        assert_eq!(classify("examples/quickstart.rs"), ("root".into(), FileRole::Example));
        assert_eq!(classify("src/lib.rs"), ("root".into(), FileRole::Lib));
    }

    #[test]
    fn registry_names_are_unique_and_kebab_case() {
        let mut names: Vec<&str> = LINTS.iter().map(|l| l.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate lint names");
        for name in names {
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "lint name {name:?} is not kebab-case"
            );
        }
    }
}
