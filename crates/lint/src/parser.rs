//! A lightweight item parser over the lexer's token stream.
//!
//! The deep (interprocedural) passes need to know *which function* a
//! token belongs to and *what that function is called* — properties a
//! flat token scan cannot see. With no `syn` in the tree (vendor/ is
//! shims only), this module recovers just enough structure from the
//! [`crate::lexer`] stream:
//!
//! * `mod name { … }` nesting (for module paths);
//! * `impl Type { … }` / `impl Trait for Type { … }` / `trait Name { … }`
//!   blocks (for method self-types and trait-impl detection);
//! * `fn` items: name, parameter names/types, return-type tokens, and the
//!   exact token range of the body — including nested functions, which
//!   own their tokens in preference to the enclosing item;
//! * `macro_rules!` bodies are skipped wholesale (token soup).
//!
//! The parser is *total*: any token stream — including arbitrary bytes
//! run through the lexer — produces a `ParsedFile` without panicking.
//! Guarantees it does **not** make: no type checking, no trait
//! resolution, no expansion of macros. Known blind spots are documented
//! in DESIGN.md §12.

use crate::lexer::{Token, TokenKind};
use crate::rules;
use std::ops::Range;

/// One parsed parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`None` for tuple/struct patterns).
    pub name: Option<String>,
    /// Token texts of the declared type (empty for bare `self`).
    pub ty: Vec<String>,
}

/// One `fn` item with its location in the code-token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Self type when declared inside `impl Type` / `trait Type`.
    pub self_ty: Option<String>,
    /// Trait name when declared inside `impl Trait for Type`.
    pub trait_impl: Option<String>,
    /// Enclosing `mod` path within the file (innermost last).
    pub module: Vec<String>,
    /// Parsed parameters, in order.
    pub params: Vec<Param>,
    /// Token texts of the return type (empty when omitted).
    pub ret: Vec<String>,
    /// Code-token range of the whole item (from `fn` through its body).
    pub span: Range<usize>,
    /// Code-token range of the body including braces; `None` for
    /// body-less trait/extern declarations.
    pub body: Option<Range<usize>>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Whether the item sits in `#[cfg(test)]`-gated or `#[test]` code.
    pub in_test: bool,
}

impl FnItem {
    /// Display name: `SelfTy::name` for methods, `mod::name` otherwise.
    pub fn display_name(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => match self.module.last() {
                Some(m) => format!("{m}::{}", self.name),
                None => self.name.clone(),
            },
        }
    }
}

/// Result of parsing one file's code-token stream.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item, in header order (outer before nested).
    pub fns: Vec<FnItem>,
    /// For each code-token index, the innermost owning fn (index into
    /// `fns`), or `None` for item-level tokens outside any fn.
    pub owner: Vec<Option<usize>>,
}

impl ParsedFile {
    /// Iterator over the token indices owned by `fn_idx` itself (its
    /// span minus any nested fn's span).
    pub fn owned_tokens(&self, fn_idx: usize) -> impl Iterator<Item = usize> + '_ {
        let span = self.fns[fn_idx].span.clone();
        span.filter(move |&i| self.owner.get(i).copied().flatten() == Some(fn_idx))
    }
}

/// Rust keywords that can precede `(` without being calls.
pub const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "ref", "else", "let",
    "fn", "unsafe", "await", "box", "dyn", "where", "impl", "yield",
];

/// What a `{` opened, for the scope stack.
enum ScopeKind {
    Mod,
    Impl,
    Fn(usize),
    Other,
}

/// Impl/trait context active while parsing.
#[derive(Clone, Default)]
struct ImplCtx {
    self_ty: Option<String>,
    trait_impl: Option<String>,
}

/// Parses the non-comment token stream of one file.
///
/// Never panics and always terminates: each loop iteration either
/// consumes at least one token or runs a helper that does.
pub fn parse_items(code: &[Token<'_>]) -> ParsedFile {
    let test_regions = rules::test_regions(code);
    let mut fns: Vec<FnItem> = Vec::new();
    let mut scopes: Vec<ScopeKind> = Vec::new();
    let mut mod_stack: Vec<String> = Vec::new();
    let mut impl_stack: Vec<ImplCtx> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let t = &code[i];
        // `macro_rules! name { … }`: opaque token soup, skip wholesale.
        if t.is_ident("macro_rules") && code.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            i = skip_balanced_braces(code, i + 2);
            continue;
        }
        // `mod name { … }` / `mod name;`
        if t.is_ident("mod")
            && code.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident)
            && code.get(i + 2).is_some_and(|n| n.is_punct("{") || n.is_punct(";"))
        {
            if code[i + 2].is_punct("{") {
                mod_stack.push(code[i + 1].text.to_string());
                scopes.push(ScopeKind::Mod);
            }
            i += 3;
            continue;
        }
        // `impl … {` / `trait Name {`
        if t.is_ident("impl") || (t.is_ident("trait") && is_ident_at(code, i + 1)) {
            let (ctx, after) = parse_impl_header(code, i);
            match code.get(after) {
                Some(open) if open.is_punct("{") => {
                    impl_stack.push(ctx);
                    scopes.push(ScopeKind::Impl);
                    i = after + 1;
                }
                _ => i = after.max(i + 1),
            }
            continue;
        }
        // `fn name…`
        if t.is_ident("fn") && is_ident_at(code, i + 1) {
            let in_test = test_regions.iter().any(|&(s, e)| (s..=e).contains(&t.line))
                || has_test_attribute(code, i);
            let (mut item, body_open) = parse_fn_header(code, i);
            item.module = mod_stack.clone();
            if let Some(ctx) = impl_stack.last() {
                item.self_ty = ctx.self_ty.clone();
                item.trait_impl = ctx.trait_impl.clone();
            }
            item.in_test = in_test;
            match body_open {
                // Body-less declaration (`fn f();` in a trait/extern).
                None => {
                    let end = item.span.end;
                    fns.push(item);
                    i = end;
                }
                Some(open) => {
                    item.body = Some(open..open + 1); // end patched at pop
                    let idx = fns.len();
                    fns.push(item);
                    scopes.push(ScopeKind::Fn(idx));
                    i = open + 1;
                }
            }
            continue;
        }
        if t.is_punct("{") {
            scopes.push(ScopeKind::Other);
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            match scopes.pop() {
                Some(ScopeKind::Mod) => {
                    mod_stack.pop();
                }
                Some(ScopeKind::Impl) => {
                    impl_stack.pop();
                }
                Some(ScopeKind::Fn(idx)) => {
                    if let Some(f) = fns.get_mut(idx) {
                        if let Some(b) = &mut f.body {
                            b.end = i + 1;
                        }
                        f.span.end = i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        i += 1;
    }
    // Unterminated constructs: close any dangling fn bodies at EOF.
    for kind in scopes {
        if let ScopeKind::Fn(idx) = kind {
            if let Some(f) = fns.get_mut(idx) {
                if let Some(b) = &mut f.body {
                    b.end = code.len();
                }
                f.span.end = code.len();
            }
        }
    }
    // Ownership: fill in header order so nested fns overwrite their
    // enclosing item's claim on the shared range.
    let mut owner = vec![None; code.len()];
    for (idx, f) in fns.iter().enumerate() {
        for slot in owner.iter_mut().take(f.span.end).skip(f.span.start) {
            *slot = Some(idx);
        }
    }
    ParsedFile { fns, owner }
}

fn is_ident_at(code: &[Token<'_>], i: usize) -> bool {
    code.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
}

/// Whether the attributes directly above the item at `i` include
/// `#[test]` (walking back over contiguous `#[…]` groups).
fn has_test_attribute(code: &[Token<'_>], at: usize) -> bool {
    // Walk backward over `]`-terminated attribute groups and modifier
    // keywords (`pub`, `const`, `async`, …).
    let mut j = at;
    while j > 0 {
        let prev = &code[j - 1];
        if prev.kind == TokenKind::Ident
            && matches!(prev.text, "pub" | "const" | "async" | "unsafe" | "extern" | "crate")
        {
            j -= 1;
            continue;
        }
        if prev.is_punct(")") {
            // `pub(crate)` — walk back over the paren group.
            let mut depth = 0usize;
            while j > 0 {
                j -= 1;
                if code[j].is_punct(")") {
                    depth += 1;
                } else if code[j].is_punct("(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            continue;
        }
        if prev.is_punct("]") {
            // Walk back to the matching `#[`.
            let mut depth = 0usize;
            let mut k = j;
            while k > 0 {
                k -= 1;
                if code[k].is_punct("]") {
                    depth += 1;
                } else if code[k].is_punct("[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            let hash = k.checked_sub(1);
            let is_attr = hash.is_some_and(|h| code[h].is_punct("#"));
            if !is_attr {
                return false;
            }
            if code[k..j].iter().any(|t| t.is_ident("test")) {
                return true;
            }
            j = hash.unwrap_or(0);
            continue;
        }
        return false;
    }
    false
}

/// Skips a balanced `{ … }` group starting at or after `from`; returns
/// the index one past the closing brace (or `code.len()`).
fn skip_balanced_braces(code: &[Token<'_>], from: usize) -> usize {
    let mut j = from;
    // Find the opening brace (macro_rules can also use `(` or `[`).
    while j < code.len() {
        let t = &code[j];
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            break;
        }
        if t.is_punct(";") {
            return j + 1;
        }
        j += 1;
    }
    let (open, close) = match code.get(j).map(|t| t.text) {
        Some("(") => ("(", ")"),
        Some("[") => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0usize;
    while j < code.len() {
        if code[j].is_punct(open) {
            depth += 1;
        } else if code[j].is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    code.len()
}

/// Net angle-bracket depth change contributed by one token.
fn angle_delta(t: &Token<'_>) -> i32 {
    match t.text {
        "<" => 1,
        ">" => -1,
        "<<" => 2,
        ">>" => -2,
        _ => 0,
    }
}

/// Skips a balanced generic argument list starting at a `<`; returns the
/// index one past the closing `>`.
fn skip_generics(code: &[Token<'_>], from: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from;
    while j < code.len() {
        let t = &code[j];
        // `->` inside `Fn() -> T` bounds contributes no depth.
        if t.kind == TokenKind::Punct && t.text != "->" {
            depth += angle_delta(t);
            if depth <= 0 && angle_delta(t) < 0 {
                return j + 1;
            }
            // Safety valve: a `;`/`{` at depth 0 means we mis-detected.
            if (t.is_punct(";") || t.is_punct("{")) && depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    code.len()
}

/// Parses an `impl`/`trait` header starting at its keyword; returns the
/// context and the index of the opening `{` (or wherever scanning gave
/// up — the caller checks).
fn parse_impl_header(code: &[Token<'_>], at: usize) -> (ImplCtx, usize) {
    let is_trait = code[at].is_ident("trait");
    let mut j = at + 1;
    if code.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_generics(code, j);
    }
    let (first_ty, mut j) = read_type_path(code, j);
    let mut ctx = ImplCtx { self_ty: first_ty.clone(), trait_impl: None };
    if !is_trait && code.get(j).is_some_and(|t| t.is_ident("for")) {
        let (second_ty, after) = read_type_path(code, j + 1);
        ctx = ImplCtx { self_ty: second_ty, trait_impl: first_ty };
        j = after;
    }
    // Skip bounds / where clauses up to the opening brace.
    let mut depth = 0i32;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct("{") && depth <= 0 {
            return (ctx, j);
        }
        if t.is_punct(";") && depth <= 0 {
            return (ctx, j);
        }
        depth += angle_delta(t);
        j += 1;
    }
    (ctx, j)
}

/// Reads one type path (`&mut a::b::Foo<T>`), returning the last path
/// segment's identifier and the index one past the type.
fn read_type_path(code: &[Token<'_>], from: usize) -> (Option<String>, usize) {
    let mut j = from;
    // Leading sigils: `&`, `&&`, `mut`, `dyn`, `!`, `?`, lifetimes, parens
    // for `&(dyn Trait)`-style are rare enough to give up on.
    while j < code.len() {
        let t = &code[j];
        if t.is_punct("&")
            || t.is_punct("&&")
            || t.is_punct("!")
            || t.is_punct("?")
            || t.is_punct("*")
            || t.kind == TokenKind::Lifetime
            || t.is_ident("mut")
            || t.is_ident("dyn")
            || t.is_ident("const")
        {
            j += 1;
        } else {
            break;
        }
    }
    let mut last: Option<String> = None;
    while j < code.len() {
        let t = &code[j];
        if t.kind == TokenKind::Ident {
            last = Some(t.text.to_string());
            j += 1;
            if code.get(j).is_some_and(|n| n.is_punct("<")) {
                j = skip_generics(code, j);
            }
            if code.get(j).is_some_and(|n| n.is_punct("::")) {
                j += 1;
                continue;
            }
        }
        break;
    }
    (last, j)
}

/// Parses a `fn` header starting at the `fn` keyword. Returns the item
/// (span covering the header; body/end patched by the caller) and the
/// index of the opening `{`, or `None` for body-less declarations.
fn parse_fn_header(code: &[Token<'_>], at: usize) -> (FnItem, Option<usize>) {
    let kw = &code[at];
    let name = code[at + 1].text.to_string();
    let mut j = at + 2;
    if code.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_generics(code, j);
    }
    // Parameter list.
    let mut params = Vec::new();
    if code.get(j).is_some_and(|t| t.is_punct("(")) {
        let open = j;
        let mut depth = 0usize;
        while j < code.len() {
            if code[j].is_punct("(") {
                depth += 1;
            } else if code[j].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let close = j.min(code.len());
        params = parse_params(&code[(open + 1).min(close)..close]);
        j = close + 1;
    }
    // Return type.
    let mut ret = Vec::new();
    if code.get(j).is_some_and(|t| t.is_punct("->")) {
        j += 1;
        let mut depth = 0i32;
        while j < code.len() {
            let t = &code[j];
            if depth <= 0 && (t.is_punct("{") || t.is_punct(";") || t.is_ident("where")) {
                break;
            }
            match t.text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                _ => depth += angle_delta(t),
            }
            ret.push(t.text.to_string());
            j += 1;
        }
    }
    // Where clause.
    if code.get(j).is_some_and(|t| t.is_ident("where")) {
        let mut depth = 0i32;
        while j < code.len() {
            let t = &code[j];
            if depth <= 0 && (t.is_punct("{") || t.is_punct(";")) {
                break;
            }
            match t.text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                _ => depth += angle_delta(t),
            }
            j += 1;
        }
    }
    let item = FnItem {
        name,
        self_ty: None,
        trait_impl: None,
        module: Vec::new(),
        params,
        ret,
        span: at..j + 1,
        body: None,
        line: kw.line,
        col: kw.col,
        in_test: false,
    };
    match code.get(j) {
        Some(t) if t.is_punct("{") => (item, Some(j)),
        _ => {
            let mut item = item;
            item.span.end = (j + 1).min(code.len().max(at + 1));
            (item, None)
        }
    }
}

/// Splits a parameter token slice at top-level commas and parses each
/// `pattern: Type` group.
fn parse_params(toks: &[Token<'_>]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut split_points = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth <= 0 => split_points.push(i),
            _ => depth += angle_delta(t),
        }
    }
    split_points.push(toks.len());
    for end in split_points {
        if start < end {
            if let Some(p) = parse_one_param(&toks[start..end]) {
                params.push(p);
            }
        }
        start = end + 1;
    }
    params
}

fn parse_one_param(group: &[Token<'_>]) -> Option<Param> {
    // Strip leading `&`, lifetimes, `mut`.
    let mut k = 0usize;
    while k < group.len() {
        let t = &group[k];
        if t.is_punct("&") || t.is_punct("&&") || t.kind == TokenKind::Lifetime || t.is_ident("mut")
        {
            k += 1;
        } else {
            break;
        }
    }
    let rest = &group[k..];
    if rest.is_empty() {
        return None;
    }
    if rest[0].is_ident("self") {
        return Some(Param { name: Some("self".to_string()), ty: Vec::new() });
    }
    // Find the `:` separating pattern from type (depth 0; `::` is one
    // token so it never confuses this).
    let mut depth = 0i32;
    let mut colon = None;
    for (i, t) in rest.iter().enumerate() {
        match t.text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ":" if depth <= 0 => {
                colon = Some(i);
                break;
            }
            _ => depth += angle_delta(t),
        }
    }
    let Some(colon) = colon else {
        // `_` or a bare pattern in a closure-like position.
        return Some(Param { name: None, ty: Vec::new() });
    };
    let name = match rest[..colon] {
        [ref single] if single.kind == TokenKind::Ident => Some(single.text.to_string()),
        _ => None,
    };
    let ty = rest[colon + 1..].iter().map(|t| t.text.to_string()).collect();
    Some(Param { name, ty })
}
