//! Work-stealing execution engine for jurisdiction anonymization.
//!
//! [`anonymize_partitioned`](crate::anonymize_partitioned) runs servers
//! one after another; this module runs them on a fixed pool of worker
//! threads pulling [`JurisdictionTask`]s from a shared
//! [`crossbeam::deque::Injector`]. Each worker owns a LIFO deque plus a
//! reusable [`DpScratch`] arena, and steals from siblings when both its
//! deque and the injector run dry — the classic work-stealing discipline.
//!
//! Two properties the tests pin down:
//!
//! * **Determinism** — task results carry their partition index and are
//!   merged in index order, so the produced [`BulkPolicy`] is
//!   *bit-identical* to the sequential run for any worker count and any
//!   steal interleaving.
//! * **Skew tolerance** — tasks are injected largest-population-first
//!   (LPT scheduling), so one giant jurisdiction cannot strand the pool:
//!   it starts first while the small tasks back-fill the other workers.
//!
//! Worker panics are caught per task and surfaced as
//! [`CoreError::WorkerPanic`] instead of aborting the run; the
//! [`Metrics`] sink (optional everywhere) counts injections, executions,
//! steals, scratch reuses, panics, and per-task queue-wait time.

use crate::{greedy_partition, split_db, ParallelOutcome, ServerReport};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use crossbeam::utils::Backoff;
use lbs_core::{Anonymizer, CoreError, DpScratch};
use lbs_geom::{Area, Rect, Region};
use lbs_metrics::{Counter, Metrics, Stage};
use lbs_model::{BulkPolicy, LocationDb, UserId};
use lbs_tree::{SpatialTree, TreeConfig, TreeKind};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Tuning knobs of the work-stealing pool.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. `0` means "ask the OS" (`available_parallelism`),
    /// and the pool never spawns more workers than there are tasks.
    pub workers: usize,
    /// Inject tasks largest-population-first (LPT). Keeps a single huge
    /// jurisdiction from becoming the tail of the schedule. Disable to
    /// keep the partition order (useful when benchmarking the skew
    /// pathology itself).
    pub largest_first: bool,
    /// Forward the Lemma-5 pass-up bound to each worker's DP scratch.
    /// Disabling it is the Section-V ablation; results are identical.
    pub use_lemma5: bool,
    /// How many times a *panicked* task is re-enqueued before the panic is
    /// surfaced as [`CoreError::WorkerPanic`]. `0` (the default) keeps the
    /// historical fail-fast behaviour. Conformance soak tests pair this
    /// with a [`FaultPlan`] whose injected panics stop firing after a set
    /// number of attempts, proving recovery produces bit-identical output.
    pub max_task_retries: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { workers: 0, largest_first: true, use_lemma5: true, max_task_retries: 0 }
    }
}

impl EngineConfig {
    /// The number of worker threads the pool will actually spawn for
    /// `tasks` queued tasks: the configured count (or the OS parallelism
    /// for `0`), clamped to `1..=tasks`.
    pub fn effective_workers(&self, tasks: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.workers
        };
        requested.clamp(1, tasks.max(1))
    }
}

/// One unit of work: anonymize a jurisdiction's sub-database.
#[derive(Debug, Clone)]
pub struct JurisdictionTask {
    /// Position in the partition order (results are merged by this).
    pub index: usize,
    /// The server's jurisdiction rectangle.
    pub jurisdiction: Rect,
    /// Users inside the jurisdiction.
    pub db: LocationDb,
    /// When the task entered the injector (queue-wait metric baseline).
    pub injected_at: Instant,
    /// Execution attempt, starting at 0. Bumped each time a panicked task
    /// is re-enqueued under [`EngineConfig::max_task_retries`].
    pub attempt: u32,
}

impl JurisdictionTask {
    /// Creates a task; `injected_at` is stamped (again) at injection.
    pub fn new(index: usize, jurisdiction: Rect, db: LocationDb) -> Self {
        // lbs-lint: allow(no-wall-clock-in-dp, reason = "injected_at feeds queue-wait metrics only; task ordering and DP output are index-deterministic")
        JurisdictionTask { index, jurisdiction, db, injected_at: Instant::now(), attempt: 0 }
    }
}

/// Deterministic fault-injection plan for the work-stealing pool.
///
/// Used by the conformance soak harness to prove two properties the
/// paper's production framing depends on: (a) *recovery determinism* —
/// with retries enabled, a run whose tasks panic on their first attempts
/// still produces output **bit-identical** to an undisturbed sequential
/// run, because results are merged by partition index; and (b) *failure
/// surfacing* — without retries, injected panics surface as
/// [`CoreError::WorkerPanic`] while sibling tasks still complete.
///
/// All knobs are keyed on the *task index* (stable across schedules), so
/// plans are reproducible regardless of which worker picks a task up.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// task index → number of leading attempts that panic before the
    /// server is actually called. `panics[&i] == n` means attempts
    /// `0..n` of task `i` blow up, attempt `n` runs normally.
    panics: HashMap<usize, u32>,
    /// task index → artificial stall before executing the task. Forces
    /// steal/starvation interleavings: a stalled worker's siblings must
    /// drain the injector and steal from its deque.
    stalls: HashMap<usize, Duration>,
    /// worker id → sleep before the worker's first pop. Starving a worker
    /// at startup forces the batch it would have claimed onto its
    /// siblings.
    worker_delays: HashMap<usize, Duration>,
    /// WAL sequence number → injected stall while the service runtime
    /// replays that record during crash recovery. Exercises
    /// deadline/progress accounting on the recovery path with the same
    /// deterministic machinery as the engine faults.
    replay_stalls: HashMap<u64, Duration>,
    /// checkpoint sequence number → number of leading attempts at writing
    /// that checkpoint which crash mid-write (leaving a torn temp file
    /// behind), before an attempt is allowed to complete.
    checkpoint_crashes: HashMap<u64, u32>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Panic on the first `attempts` attempts of task `index`.
    pub fn panic_on(mut self, index: usize, attempts: u32) -> Self {
        self.panics.insert(index, attempts);
        self
    }

    /// Stall for `delay` before executing task `index`.
    pub fn stall_on(mut self, index: usize, delay: Duration) -> Self {
        self.stalls.insert(index, delay);
        self
    }

    /// Delay worker `worker`'s first pop by `delay` (startup starvation).
    pub fn delay_worker(mut self, worker: usize, delay: Duration) -> Self {
        self.worker_delays.insert(worker, delay);
        self
    }

    /// A seeded pseudo-random plan over `tasks` task indices: roughly one
    /// in three tasks panics once, one in four stalls briefly. Splitmix64
    /// keeps the plan a pure function of `seed`, so soak failures replay.
    pub fn seeded(seed: u64, tasks: usize) -> Self {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut state = seed;
        let mut plan = FaultPlan::new();
        for index in 0..tasks {
            let roll = splitmix(&mut state);
            if roll.is_multiple_of(3) {
                plan.panics.insert(index, 1 + (roll >> 8) as u32 % 2);
            }
            if roll % 4 == 1 {
                plan.stalls.insert(index, Duration::from_micros(50 + (roll >> 16) % 450));
            }
        }
        plan
    }

    /// The largest panic-attempt count in the plan — the minimum
    /// [`EngineConfig::max_task_retries`] for every task to eventually
    /// succeed.
    pub fn max_panic_attempts(&self) -> u32 {
        self.panics.values().copied().max().unwrap_or(0)
    }

    /// Total number of panics this plan will inject (given enough
    /// retries for every task to run to completion).
    pub fn total_injected_panics(&self) -> u64 {
        self.panics.values().map(|&n| u64::from(n)).sum()
    }

    /// Does attempt `attempt` of task `index` panic under this plan?
    pub fn should_panic(&self, index: usize, attempt: u32) -> bool {
        self.panics.get(&index).is_some_and(|&n| attempt < n)
    }

    /// Stall for `delay` while replaying WAL record `seq` during recovery.
    pub fn stall_during_replay(mut self, seq: u64, delay: Duration) -> Self {
        self.replay_stalls.insert(seq, delay);
        self
    }

    /// Crash the first `attempts` attempts at writing checkpoint `seq`
    /// mid-write (a torn temp file is left on disk; no rename happens).
    pub fn crash_mid_checkpoint(mut self, seq: u64, attempts: u32) -> Self {
        self.checkpoint_crashes.insert(seq, attempts);
        self
    }

    /// Injected stall for replaying WAL record `seq`, if any.
    pub fn replay_stall(&self, seq: u64) -> Option<Duration> {
        self.replay_stalls.get(&seq).copied()
    }

    /// Does attempt `attempt` at writing checkpoint `seq` crash mid-write?
    pub fn should_crash_checkpoint(&self, seq: u64, attempt: u32) -> bool {
        self.checkpoint_crashes.get(&seq).is_some_and(|&n| attempt < n)
    }

    fn stall_for(&self, index: usize) -> Option<Duration> {
        self.stalls.get(&index).copied()
    }

    fn worker_delay(&self, worker: usize) -> Option<Duration> {
        self.worker_delays.get(&worker).copied()
    }
}

/// Per-task result: the server report plus the user→cloak assignments,
/// returned in partition (index) order.
pub type TaskResult = (ServerReport, Vec<(UserId, Region)>);

/// A cross-run cache of worker [`DpScratch`] arenas.
///
/// Within one engine run each worker already reuses its own arena from
/// task to task ([`Counter::ScratchReuses`]); the pool extends that reuse
/// across *runs* — the steady-state shape of a service re-anonymizing
/// every epoch. Workers check an arena out at startup (a hit is counted
/// under [`Counter::ScratchPoolHits`]; a miss allocates fresh) and check
/// it back in when the run drains, so epoch `n+1` starts with epoch `n`'s
/// fully grown buffers and the DP loop allocates nothing at all.
///
/// Pooling never changes results: arenas carry no row data between
/// checkouts, only capacity.
#[derive(Debug, Default)]
pub struct ScratchPool {
    arenas: Mutex<Vec<DpScratch>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks an arena out, reusing a pooled one when available. The
    /// Lemma-5 knob is (re)applied either way, so a pooled arena from a
    /// differently configured run behaves identically to a fresh one.
    pub fn checkout(&self, use_lemma5: bool, metrics: Option<&Metrics>) -> DpScratch {
        match self.arenas.lock().pop() {
            Some(mut arena) => {
                arena.set_lemma5(use_lemma5);
                if let Some(m) = metrics {
                    m.incr(Counter::ScratchPoolHits);
                }
                arena
            }
            None => DpScratch::with_lemma5(use_lemma5),
        }
    }

    /// Returns an arena to the pool for a later run.
    pub fn checkin(&self, arena: DpScratch) {
        self.arenas.lock().push(arena);
    }

    /// Arenas currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.arenas.lock().len()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Pops the next task: own deque first (hot, LIFO), then a batch from the
/// injector, then a steal sweep over the sibling deques. `None` once every
/// queue is observed empty — tasks never spawn subtasks, so empty
/// everywhere means the pool is done. Generic over the task payload so the
/// same stealing discipline serves jurisdiction runs and refresh plans.
fn find_task<T>(
    me: usize,
    local: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
    metrics: Option<&Metrics>,
) -> Option<T> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    let mut backoff = Backoff::new();
    loop {
        let mut saw_retry = false;
        match injector.steal_batch_and_pop(local) {
            Steal::Success(task) => return Some(task),
            Steal::Retry => saw_retry = true,
            Steal::Empty => {}
        }
        for (victim, stealer) in stealers.iter().enumerate() {
            if victim == me {
                continue;
            }
            match stealer.steal() {
                Steal::Success(task) => {
                    if let Some(m) = metrics {
                        m.incr(Counter::TasksStolen);
                    }
                    return Some(task);
                }
                Steal::Retry => saw_retry = true,
                Steal::Empty => {}
            }
        }
        if !saw_retry {
            return None;
        }
        backoff.snooze();
    }
}

/// Runs `tasks` on a work-stealing pool of [`EngineConfig::effective_workers`]
/// threads, calling `server` for each task with that worker's reusable
/// [`DpScratch`] arena. Results come back **sorted by task index**, so the
/// output is independent of scheduling.
///
/// A panicking `server` call is caught, counted under
/// [`Counter::WorkerPanics`], and surfaced as the run's error; the worker
/// replaces its scratch arena (the old one may be mid-mutation) and keeps
/// draining the queue so sibling tasks still complete.
///
/// # Errors
/// The first server error or panic (by completion order) is returned.
pub fn run_tasks<F>(
    tasks: Vec<JurisdictionTask>,
    config: &EngineConfig,
    server: F,
    metrics: Option<&Metrics>,
) -> Result<Vec<TaskResult>, CoreError>
where
    F: Fn(&mut DpScratch, &JurisdictionTask) -> Result<BulkPolicy, CoreError> + Sync,
{
    run_tasks_faulted(tasks, config, server, metrics, None)
}

/// [`run_tasks`] with an optional deterministic [`FaultPlan`]: injected
/// panics fire *before* the server is called (counted under
/// [`Counter::FaultsInjected`]), stalls and worker delays reshape the
/// schedule without touching results. Panicked tasks — injected or real —
/// are re-enqueued up to [`EngineConfig::max_task_retries`] times
/// (counted under [`Counter::TaskRetries`]); a task that exhausts its
/// retries surfaces as [`CoreError::WorkerPanic`].
///
/// Because results are merged by task index, a faulted run in which every
/// task eventually succeeds is **bit-identical** to a fault-free run.
///
/// # Errors
/// The first unrecovered server error or panic (by completion order).
pub fn run_tasks_faulted<F>(
    tasks: Vec<JurisdictionTask>,
    config: &EngineConfig,
    server: F,
    metrics: Option<&Metrics>,
    faults: Option<&FaultPlan>,
) -> Result<Vec<TaskResult>, CoreError>
where
    F: Fn(&mut DpScratch, &JurisdictionTask) -> Result<BulkPolicy, CoreError> + Sync,
{
    run_tasks_impl(tasks, config, server, metrics, faults, None)
}

/// [`run_tasks`] with worker arenas checked out of (and returned to) a
/// caller-owned [`ScratchPool`], so repeated runs — re-anonymization
/// epochs — stop allocating DP buffers after the first.
///
/// # Errors
/// As [`run_tasks`].
pub fn run_tasks_pooled<F>(
    tasks: Vec<JurisdictionTask>,
    config: &EngineConfig,
    server: F,
    metrics: Option<&Metrics>,
    pool: &ScratchPool,
) -> Result<Vec<TaskResult>, CoreError>
where
    F: Fn(&mut DpScratch, &JurisdictionTask) -> Result<BulkPolicy, CoreError> + Sync,
{
    run_tasks_impl(tasks, config, server, metrics, None, Some(pool))
}

fn run_tasks_impl<F>(
    tasks: Vec<JurisdictionTask>,
    config: &EngineConfig,
    server: F,
    metrics: Option<&Metrics>,
    faults: Option<&FaultPlan>,
    pool: Option<&ScratchPool>,
) -> Result<Vec<TaskResult>, CoreError>
where
    F: Fn(&mut DpScratch, &JurisdictionTask) -> Result<BulkPolicy, CoreError> + Sync,
{
    let task_count = tasks.len();
    let workers = config.effective_workers(task_count);
    let injector = Injector::new();

    // LPT: biggest sub-database first, so the long pole starts immediately.
    let mut queue = tasks;
    if config.largest_first {
        queue.sort_by(|a, b| b.db.len().cmp(&a.db.len()).then(a.index.cmp(&b.index)));
    }
    for mut task in queue {
        // lbs-lint: allow(no-wall-clock-in-dp, reason = "injection timestamp feeds queue-wait metrics only; never read by the DP")
        task.injected_at = Instant::now();
        injector.push(task);
    }
    if let Some(m) = metrics {
        m.add(Counter::TasksInjected, task_count as u64);
    }

    let locals: Vec<Worker<JurisdictionTask>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<JurisdictionTask>> = locals.iter().map(Worker::stealer).collect();

    let results: Mutex<Vec<(usize, TaskResult)>> = Mutex::new(Vec::with_capacity(task_count));
    let first_error: Mutex<Option<CoreError>> = Mutex::new(None);

    crossbeam::scope(|scope| {
        for (me, local) in locals.iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers[..];
            let results = &results;
            let first_error = &first_error;
            let server = &server;
            scope.spawn(move |_| {
                if let Some(delay) = faults.and_then(|f| f.worker_delay(me)) {
                    // Startup starvation: siblings must claim this
                    // worker's share of the injector.
                    std::thread::sleep(delay);
                }
                let mut scratch = match pool {
                    Some(p) => p.checkout(config.use_lemma5, metrics),
                    None => DpScratch::with_lemma5(config.use_lemma5),
                };
                let mut executed_here = 0usize;
                while let Some(task) = find_task(me, local, injector, stealers, metrics) {
                    if let Some(m) = metrics {
                        m.record(Stage::QueueWait, task.injected_at.elapsed());
                        m.incr(Counter::TasksExecuted);
                        if executed_here > 0 {
                            m.incr(Counter::ScratchReuses);
                        }
                    }
                    if let Some(stall) = faults.and_then(|f| f.stall_for(task.index)) {
                        std::thread::sleep(stall);
                    }
                    // lbs-lint: allow(no-wall-clock-in-dp, reason = "per-task wall time feeds ServerReport/metrics only; the merged policy is order-independent")
                    let started = Instant::now();
                    let outcome =
                        if faults.is_some_and(|f| f.should_panic(task.index, task.attempt)) {
                            if let Some(m) = metrics {
                                m.incr(Counter::FaultsInjected);
                            }
                            // lbs-lint: allow(location-taint, reason = "task index and attempt counter only; the task struct taints through field projection but no coordinate is in the message")
                            Err(Box::new(format!(
                                "fault-injected panic: task={} attempt={}",
                                task.index, task.attempt
                            )) as Box<dyn std::any::Any + Send>)
                        } else {
                            catch_unwind(AssertUnwindSafe(|| server(&mut scratch, &task)))
                        };
                    match outcome {
                        Ok(Ok(policy)) => {
                            let report = ServerReport {
                                jurisdiction: task.jurisdiction,
                                users: task.db.len(),
                                cost: policy.cost_exact().unwrap_or(0),
                                elapsed: started.elapsed(),
                            };
                            let assignments: Vec<(UserId, Region)> =
                                policy.iter().map(|(u, r)| (u, *r)).collect();
                            results.lock().push((task.index, (report, assignments)));
                        }
                        Ok(Err(e)) => {
                            if let Some(m) = metrics {
                                m.incr(Counter::ServerErrors);
                            }
                            first_error.lock().get_or_insert(e);
                        }
                        Err(payload) => {
                            if let Some(m) = metrics {
                                m.incr(Counter::WorkerPanics);
                            }
                            if task.attempt < config.max_task_retries {
                                // Recovery path: hand the task back to the
                                // pool for another attempt. Index-ordered
                                // merging keeps the final output
                                // bit-identical no matter which worker
                                // (or how late) the retry lands on.
                                if let Some(m) = metrics {
                                    m.incr(Counter::TaskRetries);
                                }
                                let mut retry = task.clone();
                                retry.attempt += 1;
                                // lbs-lint: allow(no-wall-clock-in-dp, reason = "re-injection timestamp feeds queue-wait metrics only; retry results are bit-identical")
                                retry.injected_at = Instant::now();
                                injector.push(retry);
                            } else {
                                first_error
                                    .lock()
                                    .get_or_insert(CoreError::WorkerPanic(panic_message(payload)));
                            }
                            // The arena may hold a half-written row; discard it.
                            scratch = DpScratch::with_lemma5(config.use_lemma5);
                        }
                    }
                    executed_here += 1;
                }
                if let Some(p) = pool {
                    p.checkin(scratch);
                }
            });
        }
    })
    .map_err(|payload| CoreError::WorkerPanic(panic_message(payload)))?;

    if let Some(err) = first_error.into_inner() {
        return Err(err);
    }
    let mut gathered = results.into_inner();
    gathered.sort_by_key(|(index, _)| *index);
    Ok(gathered.into_iter().map(|(_, result)| result).collect())
}

/// One indexed payload queued on the generic pool run.
struct Payload<T> {
    index: usize,
    injected_at: Instant,
    body: T,
}

/// What a [`run_payloads`] run produced: every completed `(index, result)`
/// pair sorted by index, plus the first error observed — partial progress
/// survives an error.
pub(crate) type PartialResults<R> = (Vec<(usize, R)>, Option<CoreError>);

/// Runs arbitrary indexed payloads on the same work-stealing discipline as
/// [`run_tasks`] — LIFO deques, injector batches, steal sweep with backoff,
/// one reusable [`DpScratch`] arena per worker — without the
/// jurisdiction-task extras (LPT ordering, fault plans, retries).
///
/// Unlike [`run_tasks`], an error does not discard sibling results: the
/// return value is every completed `(index, result)` pair **sorted by
/// index** plus the first error observed (by completion order). A
/// cancelled run therefore keeps its partial progress, which
/// deadline-bounded callers apply before resuming. [`CoreError::Cancelled`]
/// is routine (a deadline firing) and is not counted under
/// [`Counter::ServerErrors`].
///
/// # Errors
/// Only a worker panic aborts the run.
pub(crate) fn run_payloads<T, R, F>(
    payloads: Vec<T>,
    config: &EngineConfig,
    pool: Option<&ScratchPool>,
    metrics: Option<&Metrics>,
    server: F,
) -> Result<PartialResults<R>, CoreError>
where
    T: Send,
    R: Send,
    F: Fn(&mut DpScratch, usize, &T) -> Result<R, CoreError> + Sync,
{
    let task_count = payloads.len();
    let workers = config.effective_workers(task_count);
    let injector = Injector::new();
    for (index, body) in payloads.into_iter().enumerate() {
        // lbs-lint: allow(no-wall-clock-in-dp, reason = "injection timestamp feeds queue-wait metrics only; never read by the DP")
        injector.push(Payload { index, injected_at: Instant::now(), body });
    }
    if let Some(m) = metrics {
        m.add(Counter::TasksInjected, task_count as u64);
    }

    let locals: Vec<Worker<Payload<T>>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<Payload<T>>> = locals.iter().map(Worker::stealer).collect();
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(task_count));
    let first_error: Mutex<Option<CoreError>> = Mutex::new(None);

    crossbeam::scope(|scope| {
        for (me, local) in locals.iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers[..];
            let results = &results;
            let first_error = &first_error;
            let server = &server;
            scope.spawn(move |_| {
                let mut scratch = match pool {
                    Some(p) => p.checkout(config.use_lemma5, metrics),
                    None => DpScratch::with_lemma5(config.use_lemma5),
                };
                let mut executed_here = 0usize;
                while let Some(task) = find_task(me, local, injector, stealers, metrics) {
                    if let Some(m) = metrics {
                        m.record(Stage::QueueWait, task.injected_at.elapsed());
                        m.incr(Counter::TasksExecuted);
                        if executed_here > 0 {
                            m.incr(Counter::ScratchReuses);
                        }
                    }
                    match server(&mut scratch, task.index, &task.body) {
                        Ok(result) => results.lock().push((task.index, result)),
                        Err(e) => {
                            if let Some(m) = metrics {
                                if !matches!(e, CoreError::Cancelled) {
                                    m.incr(Counter::ServerErrors);
                                }
                            }
                            first_error.lock().get_or_insert(e);
                        }
                    }
                    executed_here += 1;
                }
                if let Some(p) = pool {
                    p.checkin(scratch);
                }
            });
        }
    })
    .map_err(|payload| CoreError::WorkerPanic(panic_message(payload)))?;

    let mut gathered = results.into_inner();
    gathered.sort_by_key(|(index, _)| *index);
    Ok((gathered, first_error.into_inner()))
}

/// Partitioned bulk anonymization on the work-stealing pool: the
/// concurrent counterpart of
/// [`anonymize_partitioned`](crate::anonymize_partitioned), producing a
/// **bit-identical** [`ParallelOutcome::policy`] and `total_cost` for any
/// worker count.
///
/// Stages recorded when `metrics` is given: [`Stage::Partition`] (tree +
/// greedy split), per-server [`Stage::TreeBuild`]/[`Stage::Dp`]/
/// [`Stage::Extract`] (via the instrumented [`Anonymizer`] build),
/// [`Stage::QueueWait`], and [`Stage::Merge`].
///
/// # Errors
/// As [`anonymize_partitioned`](crate::anonymize_partitioned); a worker
/// panic additionally surfaces as [`CoreError::WorkerPanic`].
pub fn anonymize_work_stealing(
    db: &LocationDb,
    map: Rect,
    k: usize,
    servers: usize,
    config: &EngineConfig,
    metrics: Option<&Metrics>,
) -> Result<ParallelOutcome, CoreError> {
    anonymize_work_stealing_impl(db, map, k, servers, config, metrics, None, None)
}

/// [`anonymize_work_stealing`] with worker arenas drawn from a caller-owned
/// [`ScratchPool`]. Epoch loops (periodic re-anonymization of moving
/// users) hold one pool for the lifetime of the service so every epoch
/// after the first runs allocation-free in the DP; output is bit-identical
/// to the unpooled run.
///
/// # Errors
/// As [`anonymize_work_stealing`].
pub fn anonymize_work_stealing_pooled(
    db: &LocationDb,
    map: Rect,
    k: usize,
    servers: usize,
    config: &EngineConfig,
    metrics: Option<&Metrics>,
    pool: &ScratchPool,
) -> Result<ParallelOutcome, CoreError> {
    anonymize_work_stealing_impl(db, map, k, servers, config, metrics, None, Some(pool))
}

/// [`anonymize_work_stealing`] under a deterministic [`FaultPlan`]: the
/// conformance soak entry point. With retries covering the plan's
/// injected panics, the outcome is **bit-identical** to the fault-free
/// (and sequential) run; without retries the first surviving panic
/// surfaces as [`CoreError::WorkerPanic`].
///
/// # Errors
/// As [`anonymize_work_stealing`], plus unrecovered injected panics.
#[allow(clippy::too_many_arguments)]
pub fn anonymize_work_stealing_faulted(
    db: &LocationDb,
    map: Rect,
    k: usize,
    servers: usize,
    config: &EngineConfig,
    metrics: Option<&Metrics>,
    faults: Option<&FaultPlan>,
) -> Result<ParallelOutcome, CoreError> {
    anonymize_work_stealing_impl(db, map, k, servers, config, metrics, faults, None)
}

#[allow(clippy::too_many_arguments)]
fn anonymize_work_stealing_impl(
    db: &LocationDb,
    map: Rect,
    k: usize,
    servers: usize,
    config: &EngineConfig,
    metrics: Option<&Metrics>,
    faults: Option<&FaultPlan>,
    pool: Option<&ScratchPool>,
) -> Result<ParallelOutcome, CoreError> {
    fn staged<T>(metrics: Option<&Metrics>, stage: Stage, f: impl FnOnce() -> T) -> T {
        match metrics {
            Some(m) => m.time(stage, f),
            None => f(),
        }
    }

    // lbs-lint: allow(no-wall-clock-in-dp, reason = "partition wall time is reported in ParallelOutcome timings only; never influences the partition itself")
    let partition_started = Instant::now();
    let (tree, jurisdictions, subs) = staged(metrics, Stage::Partition, || {
        let tree = SpatialTree::build(db, TreeConfig::lazy(TreeKind::Binary, map, k))
            .map_err(CoreError::Tree)?;
        let jurisdictions = greedy_partition(&tree, servers, k);
        let subs = split_db(&tree, &jurisdictions);
        Ok::<_, CoreError>((tree, jurisdictions, subs))
    })?;
    let partition_time = partition_started.elapsed();

    let tasks: Vec<JurisdictionTask> = jurisdictions
        .iter()
        .zip(subs)
        .enumerate()
        .map(|(i, (&jid, sub))| JurisdictionTask::new(i, tree.node(jid).rect, sub))
        .collect();
    let workers = config.effective_workers(tasks.len());

    let server = |scratch: &mut DpScratch, task: &JurisdictionTask| {
        if task.db.is_empty() {
            return Ok(BulkPolicy::new("empty"));
        }
        let tree_config = TreeConfig::lazy(TreeKind::Binary, task.jurisdiction, k);
        let engine =
            Anonymizer::build_instrumented(&task.db, tree_config, k, Some(scratch), metrics)?;
        Ok(engine.policy().clone())
    };

    // lbs-lint: allow(no-wall-clock-in-dp, reason = "server wall time is reported in ParallelOutcome timings only; task results are merge-order normalized")
    let run_started = Instant::now();
    let task_results = run_tasks_impl(tasks, config, server, metrics, faults, pool)?;
    let server_wall_time = run_started.elapsed();

    let outcome = staged(metrics, Stage::Merge, || {
        let mut policy =
            BulkPolicy::new(format!("parallel(k={k},servers={})", jurisdictions.len()));
        let mut reports = Vec::with_capacity(task_results.len());
        let mut total_cost: Area = 0;
        for (report, assignments) in task_results {
            total_cost += report.cost;
            reports.push(report);
            for (user, region) in assignments {
                policy.assign(user, region);
            }
        }
        ParallelOutcome {
            policy,
            total_cost,
            servers: reports,
            partition_time,
            server_wall_time,
            workers,
        }
    });
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymize_partitioned;
    use lbs_core::verify_policy_aware;
    use lbs_geom::Point;
    use lbs_workload::{generate_master, BayAreaConfig};

    fn workload(n: usize) -> (LocationDb, Rect) {
        let mut cfg = BayAreaConfig::scaled_to(n);
        cfg.map_side = 1 << 14;
        let db = generate_master(&cfg);
        (db, cfg.map())
    }

    #[test]
    fn recovery_fault_hooks_are_attempt_scoped() {
        let plan = FaultPlan::new()
            .stall_during_replay(7, Duration::from_micros(250))
            .crash_mid_checkpoint(3, 2);
        assert_eq!(plan.replay_stall(7), Some(Duration::from_micros(250)));
        assert_eq!(plan.replay_stall(8), None);
        assert!(plan.should_crash_checkpoint(3, 0));
        assert!(plan.should_crash_checkpoint(3, 1));
        assert!(!plan.should_crash_checkpoint(3, 2), "attempt n succeeds after n crashes");
        assert!(!plan.should_crash_checkpoint(4, 0));
        // Recovery hooks are independent of the engine's task-index knobs.
        assert!(!plan.should_panic(3, 0));
        assert_eq!(plan.max_panic_attempts(), 0);
    }

    #[test]
    fn effective_workers_clamps_to_task_count() {
        let cfg = EngineConfig { workers: 16, ..EngineConfig::default() };
        assert_eq!(cfg.effective_workers(3), 3);
        assert_eq!(cfg.effective_workers(0), 1);
        assert_eq!(cfg.effective_workers(100), 16);
        let auto = EngineConfig::default();
        assert!(auto.effective_workers(64) >= 1);
    }

    #[test]
    fn work_stealing_matches_sequential_bit_for_bit_at_any_worker_count() {
        let (db, map) = workload(1_500);
        let k = 10;
        let seq = anonymize_partitioned(&db, map, k, 8).unwrap();
        for workers in [1, 2, 4, 8] {
            let cfg = EngineConfig { workers, ..EngineConfig::default() };
            let ws = anonymize_work_stealing(&db, map, k, 8, &cfg, None).unwrap();
            assert_eq!(ws.total_cost, seq.total_cost, "cost at {workers} workers");
            assert_eq!(ws.policy.len(), seq.policy.len());
            assert_eq!(ws.workers, cfg.effective_workers(ws.servers.len()));
            for (user, region) in seq.policy.iter() {
                assert_eq!(
                    ws.policy.cloak_of(user),
                    Some(region),
                    "cloak of {user:?} at {workers} workers"
                );
            }
            for (a, b) in seq.servers.iter().zip(&ws.servers) {
                assert_eq!(a.jurisdiction, b.jurisdiction, "report order is partition order");
                assert_eq!(a.users, b.users);
                assert_eq!(a.cost, b.cost);
            }
            assert!(verify_policy_aware(&ws.policy, &db, k).is_ok());
        }
    }

    #[test]
    fn metrics_count_tasks_and_users() {
        let (db, map) = workload(1_200);
        let k = 10;
        let metrics = Metrics::new();
        let cfg = EngineConfig { workers: 4, ..EngineConfig::default() };
        let outcome = anonymize_work_stealing(&db, map, k, 8, &cfg, Some(&metrics)).unwrap();
        let tasks = outcome.servers.len() as u64;
        assert_eq!(metrics.get(Counter::TasksInjected), tasks);
        assert_eq!(metrics.get(Counter::TasksExecuted), tasks);
        assert_eq!(metrics.get(Counter::UsersAnonymized), db.len() as u64);
        assert_eq!(metrics.get(Counter::WorkerPanics), 0);
        assert_eq!(metrics.get(Counter::ServerErrors), 0);
        assert_eq!(metrics.stage_calls(Stage::Partition), 1);
        assert_eq!(metrics.stage_calls(Stage::Merge), 1);
        assert_eq!(metrics.stage_calls(Stage::QueueWait), tasks);
        // Every task beyond each worker's first reuses that worker's arena.
        assert!(metrics.get(Counter::ScratchReuses) <= tasks.saturating_sub(1));
    }

    #[test]
    fn panicking_server_surfaces_as_worker_panic_error() {
        let tasks: Vec<JurisdictionTask> = (0..6)
            .map(|i| {
                let db = LocationDb::from_rows([(UserId(i as u64), Point::new(1, 1))]).unwrap();
                JurisdictionTask::new(i, Rect::square(0, 0, 16), db)
            })
            .collect();
        let metrics = Metrics::new();
        let cfg = EngineConfig { workers: 2, ..EngineConfig::default() };
        let err = run_tasks(
            tasks,
            &cfg,
            |_, task| {
                if task.index == 3 {
                    panic!("injected failure in task 3");
                }
                Ok(BulkPolicy::new("ok"))
            },
            Some(&metrics),
        )
        .unwrap_err();
        match err {
            CoreError::WorkerPanic(msg) => assert!(msg.contains("injected failure")),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert_eq!(metrics.get(Counter::WorkerPanics), 1);
        // The pool drains the queue even after a panic.
        assert_eq!(metrics.get(Counter::TasksExecuted), 6);
    }

    #[test]
    fn server_error_is_propagated_not_panicked() {
        let tasks = vec![JurisdictionTask::new(
            0,
            Rect::square(0, 0, 16),
            LocationDb::from_rows([(UserId(0), Point::new(1, 1))]).unwrap(),
        )];
        let err = run_tasks(tasks, &EngineConfig::default(), |_, _| Err(CoreError::InvalidK), None)
            .unwrap_err();
        assert_eq!(err, CoreError::InvalidK);
    }

    #[test]
    fn skewed_load_completes_with_all_tasks_executed() {
        // One giant jurisdiction plus many tiny ones: LPT injection must
        // schedule the giant first and the pool must still drain the rest.
        let (db, map) = workload(2_500);
        let k = 5;
        let metrics = Metrics::new();
        let cfg = EngineConfig { workers: 3, ..EngineConfig::default() };
        let outcome = anonymize_work_stealing(&db, map, k, 24, &cfg, Some(&metrics)).unwrap();
        assert!(outcome.servers.len() > 4, "skew workload should split");
        let users: usize = outcome.servers.iter().map(|s| s.users).sum();
        assert_eq!(users, db.len());
        assert_eq!(metrics.get(Counter::TasksExecuted), outcome.servers.len() as u64);
        assert!(verify_policy_aware(&outcome.policy, &db, k).is_ok());
    }

    #[test]
    fn fault_plan_with_retries_is_bit_identical_to_sequential() {
        let (db, map) = workload(1_200);
        let k = 8;
        let seq = anonymize_partitioned(&db, map, k, 8).unwrap();
        let faults = FaultPlan::new()
            .panic_on(0, 2)
            .panic_on(3, 1)
            .stall_on(1, std::time::Duration::from_millis(2))
            .delay_worker(0, std::time::Duration::from_millis(1));
        let metrics = Metrics::new();
        let cfg = EngineConfig { workers: 4, max_task_retries: 2, ..EngineConfig::default() };
        let ws =
            anonymize_work_stealing_faulted(&db, map, k, 8, &cfg, Some(&metrics), Some(&faults))
                .unwrap();
        assert_eq!(ws.total_cost, seq.total_cost);
        assert_eq!(ws.policy.len(), seq.policy.len());
        for (user, region) in seq.policy.iter() {
            assert_eq!(ws.policy.cloak_of(user), Some(region), "cloak of {user:?} after faults");
        }
        assert_eq!(metrics.get(Counter::FaultsInjected), 3);
        assert_eq!(metrics.get(Counter::TaskRetries), 3);
        assert_eq!(metrics.get(Counter::WorkerPanics), 3);
    }

    #[test]
    fn fault_plan_without_retries_surfaces_worker_panic() {
        let (db, map) = workload(800);
        let faults = FaultPlan::new().panic_on(1, 1);
        let metrics = Metrics::new();
        let cfg = EngineConfig { workers: 2, ..EngineConfig::default() };
        let err =
            anonymize_work_stealing_faulted(&db, map, 6, 4, &cfg, Some(&metrics), Some(&faults))
                .unwrap_err();
        match err {
            CoreError::WorkerPanic(msg) => {
                assert!(msg.contains("fault-injected panic"), "{msg}");
                assert!(msg.contains("task=1"), "{msg}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert_eq!(metrics.get(Counter::FaultsInjected), 1);
        assert_eq!(metrics.get(Counter::TaskRetries), 0);
    }

    #[test]
    fn seeded_fault_plan_is_deterministic_and_replayable() {
        let a = FaultPlan::seeded(42, 32);
        let b = FaultPlan::seeded(42, 32);
        for index in 0..32 {
            for attempt in 0..4 {
                assert_eq!(a.should_panic(index, attempt), b.should_panic(index, attempt));
            }
            assert_eq!(a.stall_for(index), b.stall_for(index));
        }
        assert!(a.total_injected_panics() > 0, "seed 42 should inject something");
        let c = FaultPlan::seeded(43, 32);
        let differs = (0..32).any(|i| a.should_panic(i, 0) != c.should_panic(i, 0));
        assert!(differs, "different seeds should produce different plans");
    }

    #[test]
    fn pooled_runs_reuse_arenas_across_epochs_bit_identically() {
        let (db, map) = workload(1_200);
        let k = 10;
        let seq = anonymize_partitioned(&db, map, k, 8).unwrap();
        let pool = ScratchPool::new();
        let cfg = EngineConfig { workers: 4, ..EngineConfig::default() };
        let metrics = Metrics::new();
        // Epoch 1 starts with an empty pool. A late-spawning worker may
        // still hit (a fast sibling can drain the queue and check its
        // arena back in first), so the invariant is conservation, not a
        // hit count: every fresh allocation (checkout minus hit) grows
        // the idle set left behind.
        let first =
            anonymize_work_stealing_pooled(&db, map, k, 8, &cfg, Some(&metrics), &pool).unwrap();
        let workers = first.workers as u64;
        let hits_cold = metrics.get(Counter::ScratchPoolHits);
        assert_eq!(pool.idle() as u64 + hits_cold, workers, "arena conservation after epoch 1");
        assert!(pool.idle() >= 1, "epoch 1 must leave at least one arena parked");
        // Epoch 2 finds a warm pool: its first checkout is a hit.
        let second =
            anonymize_work_stealing_pooled(&db, map, k, 8, &cfg, Some(&metrics), &pool).unwrap();
        assert!(
            metrics.get(Counter::ScratchPoolHits) > hits_cold,
            "a warm pool must serve at least one checkout"
        );
        assert!(pool.idle() >= 1);
        // Both epochs are bit-identical to the sequential reference.
        for outcome in [&first, &second] {
            assert_eq!(outcome.total_cost, seq.total_cost);
            assert_eq!(outcome.policy.len(), seq.policy.len());
            for (user, region) in seq.policy.iter() {
                assert_eq!(outcome.policy.cloak_of(user), Some(region));
            }
        }
    }

    #[test]
    fn pool_checkout_reapplies_the_lemma5_knob() {
        let pool = ScratchPool::new();
        pool.checkin(DpScratch::with_lemma5(false));
        let metrics = Metrics::new();
        let arena = pool.checkout(true, Some(&metrics));
        assert!(arena.use_lemma5(), "pooled arena must adopt the new run's setting");
        assert_eq!(metrics.get(Counter::ScratchPoolHits), 1);
        assert_eq!(pool.idle(), 0);
        let fresh = pool.checkout(false, Some(&metrics));
        assert!(!fresh.use_lemma5());
        assert_eq!(metrics.get(Counter::ScratchPoolHits), 1, "empty pool allocates, no hit");
    }

    #[test]
    fn lemma5_ablation_is_bit_identical() {
        let (db, map) = workload(900);
        let k = 6;
        let on = anonymize_work_stealing(&db, map, k, 4, &EngineConfig::default(), None).unwrap();
        let off_cfg = EngineConfig { use_lemma5: false, ..EngineConfig::default() };
        let off = anonymize_work_stealing(&db, map, k, 4, &off_cfg, None).unwrap();
        assert_eq!(on.total_cost, off.total_cost);
        for (user, region) in on.policy.iter() {
            assert_eq!(off.policy.cloak_of(user), Some(region));
        }
    }
}
