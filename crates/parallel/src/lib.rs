//! Parallel anonymization via jurisdiction partitioning (Section V).
//!
//! The bulk-anonymization problem is embarrassingly parallel in space:
//! partition the map into *jurisdictions*, give each to an independent
//! anonymization server with its own binary tree and location sub-database,
//! and let the master policy delegate each location to the server whose
//! jurisdiction contains it. Cloaks never span jurisdictions, so the cost
//! can exceed the single-server optimum — but only for users near borders,
//! and the paper measures the divergence at 0% up to ~2k jurisdictions and
//! < 1% up to 4096 (Section VI-D).
//!
//! Jurisdictions are chosen by the paper's greedy scheme over the binary
//! tree: repeatedly replace the most-populous node whose children each
//! hold 0 or ≥ k users by its children, until enough jurisdictions exist.
//!
//! The host this reproduction runs on has a single core, so
//! [`anonymize_partitioned`] times each server individually and reports
//! `max(per-server time)` as the simulated parallel wall time — exact for
//! shared-nothing servers — while [`anonymize_threaded`] actually runs the
//! servers on OS threads to exercise the concurrent code path. The
//! threaded path is the [`engine`] module's work-stealing pool: a fixed
//! set of workers pulling jurisdiction tasks from a `crossbeam` injector,
//! each with a reusable DP scratch arena, producing bit-identical output
//! to the sequential run (see [`anonymize_work_stealing`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod refresh;

pub use refresh::refresh_parallel;

pub use engine::{
    anonymize_work_stealing, anonymize_work_stealing_faulted, anonymize_work_stealing_pooled,
    run_tasks, run_tasks_faulted, run_tasks_pooled, EngineConfig, FaultPlan, JurisdictionTask,
    ScratchPool, TaskResult,
};

use lbs_core::{Anonymizer, CoreError};
use lbs_geom::{Area, Rect};
use lbs_model::{BulkPolicy, LocationDb};
use lbs_tree::{NodeId, SpatialTree, TreeConfig, TreeKind};
use std::time::{Duration, Instant};

/// Per-server outcome of a partitioned run.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// The server's jurisdiction.
    pub jurisdiction: Rect,
    /// Users under this jurisdiction.
    pub users: usize,
    /// The server's `Cost(P, D_j)` (0 for empty jurisdictions).
    pub cost: Area,
    /// Time this server spent building its tree + DP + policy.
    pub elapsed: Duration,
}

/// Outcome of a partitioned (multi-server) bulk anonymization.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// The master policy: the union of all server policies.
    pub policy: BulkPolicy,
    /// Σ server costs — compare against the single-server optimum for the
    /// Section VI-D divergence figure.
    pub total_cost: Area,
    /// One report per jurisdiction, in partition order.
    pub servers: Vec<ServerReport>,
    /// Time spent building the partition tree and choosing jurisdictions.
    pub partition_time: Duration,
    /// Wall time of the server phase as actually executed (sequentially
    /// for [`anonymize_partitioned`], on the work-stealing pool for
    /// [`anonymize_work_stealing`] / [`anonymize_threaded`]).
    pub server_wall_time: Duration,
    /// Worker threads used for the server phase (1 for the sequential
    /// runner).
    pub workers: usize,
}

impl ParallelOutcome {
    /// Simulated parallel wall time: partitioning plus the slowest server.
    pub fn simulated_wall_time(&self) -> Duration {
        self.partition_time + self.servers.iter().map(|s| s.elapsed).max().unwrap_or_default()
    }

    /// Cost divergence vs. a reference (single-server) optimal cost, as a
    /// fraction (0.01 = 1%).
    pub fn divergence_from(&self, optimal: Area) -> f64 {
        if optimal == 0 {
            return 0.0;
        }
        (self.total_cost as f64 - optimal as f64) / optimal as f64
    }
}

/// The paper's greedy partitioner: starting from the root, repeatedly
/// replace the most-populous *splittable* jurisdiction (children each hold
/// 0 or ≥ k users) by its children, until `servers` jurisdictions exist or
/// nothing is splittable. Returns the jurisdiction nodes of `tree`.
pub fn greedy_partition(tree: &SpatialTree, servers: usize, k: usize) -> Vec<NodeId> {
    assert!(servers >= 1);
    let splittable = |id: NodeId| {
        let node = tree.node(id);
        !node.is_leaf()
            && node.children.as_slice().iter().all(|&c| tree.count(c) == 0 || tree.count(c) >= k)
    };
    let mut jurisdictions = vec![tree.root()];
    while jurisdictions.len() < servers {
        let candidate = jurisdictions
            .iter()
            .enumerate()
            .filter(|&(_, &id)| splittable(id))
            .max_by_key(|&(_, &id)| tree.count(id));
        let Some((pos, _)) = candidate else { break };
        let id = jurisdictions.swap_remove(pos);
        jurisdictions.extend_from_slice(tree.node(id).children.as_slice());
    }
    jurisdictions
}

/// The jurisdiction rectangles, in jurisdiction order. Because each
/// jurisdiction is a tree node and siblings partition their parent's
/// half-open rect exactly, the returned rects tile the map: every on-map
/// point lies in exactly one of them. The sharded service runtime keys
/// its user→shard routing off this tiling.
pub fn jurisdiction_rects(tree: &SpatialTree, jurisdictions: &[NodeId]) -> Vec<Rect> {
    jurisdictions.iter().map(|&id| tree.node(id).rect).collect()
}

/// Splits `db` into per-jurisdiction sub-databases (in jurisdiction order).
pub fn split_db(tree: &SpatialTree, jurisdictions: &[NodeId]) -> Vec<LocationDb> {
    // lbs-lint: allow(no-unwrap-in-lib, reason = "subtree_users enumerates each stored user exactly once, so per-jurisdiction ids cannot collide")
    jurisdictions
        .iter()
        .map(|&id| LocationDb::from_rows(tree.subtree_users(id)).expect("unique ids in snapshot"))
        .collect()
}

/// Runs partitioned bulk anonymization sequentially, timing each server.
///
/// # Errors
/// Propagates map/tree/DP failures; a jurisdiction whose population is
/// positive but below k (impossible under the greedy partitioner, possible
/// with hand-made jurisdiction lists) surfaces as
/// [`CoreError::InsufficientPopulation`].
pub fn anonymize_partitioned(
    db: &LocationDb,
    map: Rect,
    k: usize,
    servers: usize,
) -> Result<ParallelOutcome, CoreError> {
    // lbs-lint: allow(no-wall-clock-in-dp, reason = "partition wall time is reported in ParallelOutcome timings only; the partition is tree-deterministic")
    let partition_started = Instant::now();
    let tree = SpatialTree::build(db, TreeConfig::lazy(TreeKind::Binary, map, k))
        .map_err(CoreError::Tree)?;
    let jurisdictions = greedy_partition(&tree, servers, k);
    let subs = split_db(&tree, &jurisdictions);
    let partition_time = partition_started.elapsed();

    // lbs-lint: allow(no-wall-clock-in-dp, reason = "aggregate server wall time is reported in ParallelOutcome timings only")
    let servers_started = Instant::now();
    let mut policy = BulkPolicy::new(format!("parallel(k={k},servers={})", jurisdictions.len()));
    let mut reports = Vec::with_capacity(jurisdictions.len());
    let mut total_cost: Area = 0;
    for (&jid, sub) in jurisdictions.iter().zip(&subs) {
        let jurisdiction = tree.node(jid).rect;
        // lbs-lint: allow(no-wall-clock-in-dp, reason = "per-server wall time is reported in ServerReport timings only; policies are input-deterministic")
        let started = Instant::now();
        let server_policy = if sub.is_empty() {
            BulkPolicy::new("empty")
        } else {
            let config = TreeConfig::lazy(TreeKind::Binary, jurisdiction, k);
            let engine = Anonymizer::build_with_config(sub, config, k)?;
            engine.policy().clone()
        };
        let cost = server_policy.cost_exact().unwrap_or(0);
        for (user, region) in server_policy.iter() {
            policy.assign(user, *region);
        }
        total_cost += cost;
        reports.push(ServerReport {
            jurisdiction,
            users: sub.len(),
            cost,
            elapsed: started.elapsed(),
        });
    }
    Ok(ParallelOutcome {
        policy,
        total_cost,
        servers: reports,
        partition_time,
        server_wall_time: servers_started.elapsed(),
        workers: 1,
    })
}

/// As [`anonymize_partitioned`], but actually running the servers on the
/// work-stealing pool with default [`EngineConfig`] (one worker per
/// available core, capped by jurisdiction count). Per-server timings
/// include scheduler interference, so use the sequential variant for the
/// timing experiments. The resulting policy is bit-identical to the
/// sequential one.
///
/// # Errors
/// First server error wins; others are discarded. A panicking server
/// surfaces as [`CoreError::WorkerPanic`] instead of aborting the
/// process.
pub fn anonymize_threaded(
    db: &LocationDb,
    map: Rect,
    k: usize,
    servers: usize,
) -> Result<ParallelOutcome, CoreError> {
    anonymize_work_stealing(db, map, k, servers, &EngineConfig::default(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_core::verify_policy_aware;
    use lbs_workload::{generate_master, BayAreaConfig};

    fn workload(n: usize) -> (LocationDb, Rect) {
        let mut cfg = BayAreaConfig::scaled_to(n);
        cfg.map_side = 1 << 14;
        let db = generate_master(&cfg);
        (db, cfg.map())
    }

    #[test]
    fn greedy_partition_respects_server_count_and_k_rule() {
        let (db, map) = workload(2_000);
        let k = 10;
        let tree = SpatialTree::build(&db, TreeConfig::lazy(TreeKind::Binary, map, k)).unwrap();
        for servers in [1, 2, 4, 8, 16] {
            let parts = greedy_partition(&tree, servers, k);
            assert!(parts.len() <= servers.max(1));
            let total: usize = parts.iter().map(|&id| tree.count(id)).sum();
            assert_eq!(total, db.len(), "jurisdictions partition the users");
            for &id in &parts {
                let c = tree.count(id);
                assert!(c == 0 || c >= k, "jurisdiction with 0 < {c} < k");
            }
        }
    }

    #[test]
    fn single_jurisdiction_matches_direct_anonymizer() {
        let (db, map) = workload(1_000);
        let k = 8;
        let direct = Anonymizer::build(&db, map, k).unwrap();
        let outcome = anonymize_partitioned(&db, map, k, 1).unwrap();
        assert_eq!(outcome.total_cost, direct.cost());
        assert_eq!(outcome.servers.len(), 1);
        assert!(verify_policy_aware(&outcome.policy, &db, k).is_ok());
    }

    #[test]
    fn partitioned_cost_close_to_optimal_and_policy_anonymous() {
        let (db, map) = workload(3_000);
        let k = 10;
        let optimal = Anonymizer::build(&db, map, k).unwrap().cost();
        for servers in [4, 16] {
            let outcome = anonymize_partitioned(&db, map, k, servers).unwrap();
            assert!(outcome.total_cost >= optimal, "partitioning cannot beat the optimum");
            assert!(
                outcome.divergence_from(optimal) < 0.05,
                "divergence {} too large at {servers} servers",
                outcome.divergence_from(optimal)
            );
            assert_eq!(outcome.policy.len(), db.len());
            assert!(outcome.policy.is_masking_and_total(&db));
            assert!(verify_policy_aware(&outcome.policy, &db, k).is_ok());
        }
    }

    #[test]
    fn threaded_and_sequential_agree_on_cost() {
        let (db, map) = workload(1_500);
        let k = 10;
        let seq = anonymize_partitioned(&db, map, k, 8).unwrap();
        let thr = anonymize_threaded(&db, map, k, 8).unwrap();
        assert_eq!(seq.total_cost, thr.total_cost);
        assert_eq!(seq.policy.len(), thr.policy.len());
        assert_eq!(seq.servers.len(), thr.servers.len());
        assert!(verify_policy_aware(&thr.policy, &db, k).is_ok());
    }

    #[test]
    fn simulated_wall_time_is_partition_plus_slowest() {
        let (db, map) = workload(1_000);
        let outcome = anonymize_partitioned(&db, map, 8, 4).unwrap();
        let slowest = outcome.servers.iter().map(|s| s.elapsed).max().unwrap();
        assert_eq!(outcome.simulated_wall_time(), outcome.partition_time + slowest);
    }
}
