//! Parallel batched refresh of an [`IncrementalAnonymizer`] on the
//! work-stealing pool.
//!
//! A batched commit dirties many root paths at once. The maintainer's
//! [`plan_refresh`](IncrementalAnonymizer::plan_refresh) coalesces them
//! into disjoint dirty subtrees plus a shared ancestor spine; this module
//! computes the subtrees concurrently on the [`engine`](crate::engine)
//! pool (each worker reusing one DP scratch arena), applies their rows in
//! plan order, and sweeps the spine sequentially. Because tasks touch
//! disjoint rows and read only task-local rows or clean data, and rows
//! come from the same engines the sequential sweep uses, the refreshed
//! matrix is **bit-identical** to [`IncrementalAnonymizer::refresh`] for
//! any worker count and any steal interleaving — pinned by
//! `tests/incremental_batch.rs`.
//!
//! Cancellation keeps the sequential path's partial-progress contract:
//! rows of tasks that completed before the deadline are applied and
//! retired from the pending set, so a later refresh (parallel or not)
//! resumes where this one stopped and completes identically.

use crate::engine::{run_payloads, EngineConfig, ScratchPool};
use lbs_core::{CoreError, IncrementalAnonymizer, IncrementalReport};
use lbs_metrics::{Counter, Metrics};

/// How many plan tasks to aim for per worker. A little over-decomposition
/// lets the stealing discipline absorb skew between subtree sizes without
/// fragmenting the dirty set into per-row tasks.
const TASKS_PER_WORKER: usize = 4;

/// Recomputes every pending row of `inc`, running disjoint dirty subtrees
/// concurrently on a work-stealing pool of
/// [`EngineConfig::effective_workers`] threads.
///
/// Falls back to the sequential sweep when the plan yields fewer than two
/// tasks (single dirty path, tiny dirty set, or one worker) — the result
/// is bit-identical either way, so callers never need to choose. `cancel`
/// is polled before every row on every worker; on cancellation, completed
/// tasks' rows are applied before the error returns, preserving resumable
/// partial progress.
///
/// # Errors
/// [`CoreError::Cancelled`] when `cancel` fires with rows still pending;
/// DP errors otherwise.
pub fn refresh_parallel(
    inc: &mut IncrementalAnonymizer,
    config: &EngineConfig,
    pool: Option<&ScratchPool>,
    metrics: Option<&Metrics>,
    cancel: &(dyn Fn() -> bool + Sync),
) -> Result<IncrementalReport, CoreError> {
    let mut report = IncrementalReport::default();
    if inc.is_fresh() {
        return Ok(report);
    }
    let workers = config.effective_workers(inc.pending_rows());
    let plan = inc.plan_refresh(workers * TASKS_PER_WORKER);
    if workers <= 1 || plan.tasks.len() < 2 {
        return inc.refresh_cancellable(&|| cancel());
    }
    report.dirty_subtrees = plan.tasks.len();
    if let Some(m) = metrics {
        m.add(Counter::DirtySubtrees, plan.tasks.len() as u64);
    }

    let shared: &IncrementalAnonymizer = inc;
    let (completed, error) =
        run_payloads(plan.tasks, config, pool, metrics, |scratch, _index, nodes: &Vec<_>| {
            shared.compute_task_rows(nodes, scratch, &|| cancel())
        })?;
    // Apply whatever finished — in index order, so progress is
    // deterministic — before surfacing any error. Tasks touch disjoint
    // rows, so partially applied plans stay correct and resumable.
    for (_, task) in completed {
        report.cache_hits += task.cache_hits;
        report.cache_misses += task.cache_misses;
        report.rows_recomputed += inc.apply_task_rows(task);
    }
    if let Some(err) = error {
        return Err(err);
    }
    inc.refresh_sequence(&plan.spine, &|| cancel(), &mut report)?;
    inc.finish_refresh(&mut report);
    if let Some(m) = metrics {
        m.add(Counter::SubtreeCacheHits, report.cache_hits as u64);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_geom::{Point, Rect};
    use lbs_model::{LocationDb, Move, UserId, UserUpdate};
    use lbs_tree::{TreeConfig, TreeKind};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_db(rng: &mut StdRng, n: usize, side: i64) -> LocationDb {
        LocationDb::from_rows((0..n).map(|i| {
            (UserId(i as u64), Point::new(rng.gen_range(0..side), rng.gen_range(0..side)))
        }))
        .unwrap()
    }

    fn random_moves(rng: &mut StdRng, n: u64, count: usize, side: i64) -> Vec<Move> {
        let moves: Vec<Move> = (0..count)
            .map(|_| Move {
                user: UserId(rng.gen_range(0..n)),
                to: Point::new(rng.gen_range(0..side), rng.gen_range(0..side)),
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        moves.into_iter().rev().filter(|m| seen.insert(m.user)).collect()
    }

    fn stage_round(
        kind: TreeKind,
        seed: u64,
    ) -> (IncrementalAnonymizer, IncrementalAnonymizer, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let side = 128i64;
        let n = 400u64;
        let k = 6;
        let mut db = random_db(&mut rng, n as usize, side);
        let cfg = TreeConfig::lazy(kind, Rect::square(0, 0, side), k);
        let mut seq = IncrementalAnonymizer::new(&db, cfg, k).unwrap();
        let moves = random_moves(&mut rng, n, 48, side);
        db.apply_moves(&moves).unwrap();
        let updates: Vec<UserUpdate> = moves.iter().copied().map(UserUpdate::Move).collect();
        seq.stage_updates(&updates).unwrap();
        let par = seq.clone();
        let pending = seq.pending_rows();
        (seq, par, pending)
    }

    #[test]
    fn parallel_refresh_is_bit_identical_at_any_worker_count() {
        for kind in [TreeKind::Binary, TreeKind::Quad] {
            let (mut seq, base, _) = stage_round(kind, 97);
            let seq_report = seq.refresh().unwrap();
            for workers in [2usize, 4, 8] {
                let mut par = base.clone();
                let config = EngineConfig { workers, ..EngineConfig::default() };
                let report = refresh_parallel(&mut par, &config, None, None, &|| false).unwrap();
                assert!(par.is_fresh());
                assert_eq!(report.rows_recomputed, seq_report.rows_recomputed);
                assert_eq!(report.rows_reused, seq_report.rows_reused);
                assert!(report.dirty_subtrees > 1, "{kind:?}/{workers}: {report:?}");
                assert_eq!(
                    par.matrix(),
                    seq.matrix(),
                    "{kind:?} with {workers} workers must match sequential"
                );
            }
        }
    }

    #[test]
    fn one_worker_falls_back_to_sequential_sweep() {
        let (mut seq, mut par, _) = stage_round(TreeKind::Binary, 3);
        seq.refresh().unwrap();
        let config = EngineConfig { workers: 1, ..EngineConfig::default() };
        let report = refresh_parallel(&mut par, &config, None, None, &|| false).unwrap();
        assert_eq!(report.dirty_subtrees, 0, "no plan on one worker");
        assert_eq!(par.matrix(), seq.matrix());
    }

    #[test]
    fn cancelled_parallel_refresh_keeps_progress_and_resumes_identically() {
        let (mut seq, mut par, pending) = stage_round(TreeKind::Binary, 11);
        seq.refresh().unwrap();

        // Fire the deadline after a few rows; workers poll per row.
        let budget = std::sync::atomic::AtomicUsize::new(5);
        let cancel = || {
            use std::sync::atomic::Ordering;
            // fetch_update never fails with this closure; saturate at 0.
            budget
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| Some(b.saturating_sub(1)))
                .unwrap_or(0)
                == 0
        };
        let config = EngineConfig { workers: 4, ..EngineConfig::default() };
        let err = refresh_parallel(&mut par, &config, None, None, &cancel).unwrap_err();
        assert!(matches!(err, CoreError::Cancelled));
        assert!(!par.is_fresh(), "cancelled refresh leaves rows pending");
        assert!(par.pending_rows() <= pending, "completed tasks retired their rows");

        // A later (uncancelled) refresh completes to the sequential result.
        let config = EngineConfig { workers: 4, ..EngineConfig::default() };
        refresh_parallel(&mut par, &config, None, None, &|| false).unwrap();
        assert!(par.is_fresh());
        assert_eq!(par.matrix(), seq.matrix());
    }

    #[test]
    fn pooled_refresh_reuses_scratch_arenas() {
        let pool = ScratchPool::new();
        let config = EngineConfig { workers: 4, ..EngineConfig::default() };
        for round in 0..2 {
            let (_, mut par, _) = stage_round(TreeKind::Binary, 60 + round);
            refresh_parallel(&mut par, &config, Some(&pool), None, &|| false).unwrap();
            assert!(par.is_fresh());
        }
        assert!(pool.idle() > 0, "arenas returned to the pool");
    }
}
