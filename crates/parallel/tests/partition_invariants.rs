//! Structural invariants of jurisdiction partitioning beyond the
//! cost-focused unit tests: determinism, spatial disjointness, and
//! stability of the greedy order.

use lbs_parallel::{anonymize_partitioned, greedy_partition};
use lbs_tree::{SpatialTree, TreeConfig, TreeKind};
use lbs_workload::{generate_master, BayAreaConfig};

fn setup(n: usize, k: usize) -> (lbs_model::LocationDb, lbs_geom::Rect, SpatialTree) {
    let mut cfg = BayAreaConfig::scaled_to(n);
    cfg.map_side = 1 << 14;
    let db = generate_master(&cfg);
    let map = cfg.map();
    let tree = SpatialTree::build(&db, TreeConfig::lazy(TreeKind::Binary, map, k)).unwrap();
    (db, map, tree)
}

#[test]
fn jurisdiction_rects_are_pairwise_disjoint_and_cover_all_users() {
    let k = 10;
    let (db, _, tree) = setup(3_000, k);
    for servers in [2usize, 7, 33, 128] {
        let parts = greedy_partition(&tree, servers, k);
        // Pairwise disjoint rects.
        for (i, &a) in parts.iter().enumerate() {
            for &b in &parts[i + 1..] {
                assert!(
                    !tree.node(a).rect.intersects(&tree.node(b).rect),
                    "servers={servers}: {a} and {b} overlap"
                );
            }
        }
        // Every user falls in exactly one jurisdiction.
        for (user, p) in db.iter() {
            let n = parts.iter().filter(|&&id| tree.node(id).rect.contains(&p)).count();
            assert_eq!(n, 1, "servers={servers}: {user} covered {n} times");
        }
    }
}

#[test]
fn partitioning_is_deterministic() {
    let k = 10;
    let (_, _, tree) = setup(2_000, k);
    let a = greedy_partition(&tree, 16, k);
    let b = greedy_partition(&tree, 16, k);
    assert_eq!(a, b);
}

#[test]
fn more_servers_refine_the_partition() {
    // Greedy always splits the most populous splittable node, so the
    // 2s-server partition's rects are each contained in some rect of the
    // s-server partition.
    let k = 10;
    let (_, _, tree) = setup(3_000, k);
    let coarse = greedy_partition(&tree, 8, k);
    let fine = greedy_partition(&tree, 16, k);
    for &f in &fine {
        let fr = tree.node(f).rect;
        assert!(
            coarse.iter().any(|&c| tree.node(c).rect.contains_rect(&fr)),
            "{f} not nested in the coarse partition"
        );
    }
}

#[test]
fn requesting_more_servers_than_splittable_nodes_saturates() {
    let k = 10;
    let (db, map, tree) = setup(500, k);
    let parts = greedy_partition(&tree, 1_000_000, k);
    assert!(parts.len() < 1_000_000);
    let total: usize = parts.iter().map(|&id| tree.count(id)).sum();
    assert_eq!(total, db.len());
    // The saturated partition still anonymizes everything correctly.
    let outcome = anonymize_partitioned(&db, map, k, 1_000_000).unwrap();
    assert_eq!(outcome.policy.len(), db.len());
}

#[test]
fn zero_user_map_yields_single_empty_jurisdiction() {
    let db = lbs_model::LocationDb::new();
    let map = lbs_geom::Rect::square(0, 0, 1 << 10);
    let tree = SpatialTree::build(&db, TreeConfig::lazy(TreeKind::Binary, map, 5)).unwrap();
    let parts = greedy_partition(&tree, 8, 5);
    assert_eq!(parts, vec![tree.root()]);
    let outcome = anonymize_partitioned(&db, map, 5, 8).unwrap();
    assert_eq!(outcome.total_cost, 0);
    assert!(outcome.policy.is_empty());
}
