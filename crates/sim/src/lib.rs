//! End-to-end simulation of the privacy-conscious LBS model (Section II-B)
//! over a sequence of location-database snapshots.
//!
//! Each simulated snapshot runs the full pipeline the paper describes:
//!
//! 1. users move (bounded per-snapshot displacement);
//! 2. the CSP incrementally maintains the optimal policy-aware
//!    configuration matrix and extracts the snapshot's policy;
//! 3. a sample of users issues service requests; the CSP anonymizes them
//!    and serves them through the answer cache and the LBS's cloaked
//!    nearest-neighbor evaluation; clients filter exactly;
//! 4. the full attacker suite runs against what each party could log:
//!    the policy-aware group audit (must stay clean), and the
//!    frequency-counting attack against the *post-cache* LBS log (must
//!    find no full exposures).
//!
//! The simulation is fully deterministic per seed, making it suitable
//! both for integration testing (every invariant is asserted every
//! snapshot) and for the `end_to_end` example's reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lbs_attack::{audit_policy, FrequencyAttacker};
use lbs_core::{CoreError, IncrementalAnonymizer};
use lbs_geom::Point;
use lbs_model::{AnonymizedRequest, CloakingPolicy, RequestId, RequestParams, ServiceRequest};
use lbs_query::{CloakedLbs, Poi, PoiId, PoiStore};
use lbs_tree::{TreeConfig, TreeKind};
use lbs_workload::{derive_seed, generate_master, random_moves, BayAreaConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Simulation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Mobile users on the map.
    pub users: usize,
    /// Anonymity level.
    pub k: usize,
    /// Snapshots to simulate (the paper refreshes every ~30 s).
    pub snapshots: usize,
    /// Fraction of users issuing a request each snapshot.
    pub request_rate: f64,
    /// Fraction of users moving between snapshots.
    pub mover_fraction: f64,
    /// Maximum per-snapshot displacement in meters (paper: 200 m / 10 s).
    pub max_move_m: f64,
    /// Points of interest on the map.
    pub pois: usize,
    /// POI categories users ask about.
    pub categories: Vec<String>,
    /// RNG seed (everything downstream is deterministic in it).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            users: 20_000,
            k: 50,
            snapshots: 5,
            request_rate: 0.05,
            mover_fraction: 0.01,
            max_move_m: 200.0,
            pois: 2_000,
            categories: vec!["rest".into(), "groc".into(), "gas".into()],
            seed: 0x51A4,
        }
    }
}

/// Per-snapshot measurements and assertion outcomes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotMetrics {
    /// Snapshot index (0 = initial bulk anonymization).
    pub snapshot: usize,
    /// Users that moved into this snapshot.
    pub moved: usize,
    /// DP rows recomputed by incremental maintenance (all rows at t=0).
    pub rows_recomputed: usize,
    /// Wall time spent maintaining the policy.
    pub maintain_time: Duration,
    /// `Cost(P, D)` of the snapshot's optimal policy.
    pub cost: u128,
    /// Smallest cloak group (≥ k when the audit is clean).
    pub min_group: usize,
    /// Requests issued this snapshot.
    pub requests: usize,
    /// Requests answered from the CSP cache (hidden from the LBS).
    pub cache_hits: usize,
    /// Average NN candidate-set size shipped to clients.
    pub avg_candidates: f64,
    /// Policy-aware audit breaches (must be 0).
    pub breaches: usize,
    /// Full frequency exposures in the post-cache LBS log (must be 0).
    pub frequency_exposures: usize,
}

/// Whole-run report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// The configuration that produced this report.
    pub config: SimConfig,
    /// One entry per snapshot.
    pub snapshots: Vec<SnapshotMetrics>,
}

impl SimReport {
    /// Total requests served across the run.
    pub fn total_requests(&self) -> usize {
        self.snapshots.iter().map(|s| s.requests).sum()
    }

    /// Total breaches across the run (0 for a correct system).
    pub fn total_breaches(&self) -> usize {
        self.snapshots.iter().map(|s| s.breaches + s.frequency_exposures).sum()
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} users, k={}, {} snapshots, {} requests total, {} breaches",
            self.config.users,
            self.config.k,
            self.snapshots.len(),
            self.total_requests(),
            self.total_breaches(),
        )?;
        for s in &self.snapshots {
            writeln!(
                f,
                "  t={}: moved={} rows={} maintain={:.3}s cost={} min_group={} \
                 requests={} cache_hits={} candidates={:.1}",
                s.snapshot,
                s.moved,
                s.rows_recomputed,
                s.maintain_time.as_secs_f64(),
                s.cost,
                s.min_group,
                s.requests,
                s.cache_hits,
                s.avg_candidates,
            )?;
        }
        Ok(())
    }
}

/// Errors of a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// Anonymization failed (population below k, bad map, …).
    Core(CoreError),
    /// POI/tree substrate construction failed.
    Setup(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Core(e) => write!(f, "anonymization failed: {e}"),
            SimError::Setup(msg) => write!(f, "setup failed: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

/// Runs the simulation.
///
/// # Errors
/// Propagates substrate construction and anonymization failures;
/// privacy-invariant violations (audit breaches) are *reported*, not
/// errored, so tests can assert on them.
pub fn run(config: &SimConfig) -> Result<SimReport, SimError> {
    // Stream assignments under the master seed (see `derive_seed`):
    // 0 = POI placement + request traffic, 1 = workload generation,
    // 1000 + t = movement into snapshot t. One master seed replays the
    // entire run, including every conformance assertion along the way.
    let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, 0));
    let bay = BayAreaConfig {
        seed: derive_seed(config.seed, 1),
        ..BayAreaConfig::scaled_to(config.users)
    };
    let mut db = generate_master(&bay);
    let map = bay.map();

    // POIs scattered uniformly (businesses are less clustered than homes).
    let pois: Vec<Poi> = (0..config.pois)
        .map(|i| Poi {
            id: PoiId(i as u64),
            location: Point::new(rng.gen_range(map.x0..map.x1), rng.gen_range(map.y0..map.y1)),
            category: config.categories[i % config.categories.len().max(1)].clone(),
        })
        .collect();
    let store = PoiStore::build(map, (map.width() / 64).max(1), pois).map_err(SimError::Setup)?;
    let mut lbs = CloakedLbs::new(store);

    let tree_config = TreeConfig::lazy(TreeKind::Binary, map, config.k);
    let (mut engine, initial_time) =
        timed(|| IncrementalAnonymizer::new(&db, tree_config, config.k))?;
    let mut next_rid = 0u64;
    let mut snapshots = Vec::with_capacity(config.snapshots);

    for t in 0..config.snapshots {
        // 1. Movement (none before the first snapshot).
        let (moved, rows_recomputed, maintain_time) = if t == 0 {
            (0, engine.tree().live_len(), initial_time)
        } else {
            let moves = random_moves(
                &db,
                &map,
                config.mover_fraction,
                config.max_move_m,
                derive_seed(config.seed, 1000 + t as u64),
            );
            // lbs-lint: allow(no-unwrap-in-lib, reason = "random_moves draws users and in-map targets from this very db, so every move validates")
            db.apply_moves(&moves).expect("moves generated from current db");
            let (report, elapsed) = timed(|| engine.apply_moves(&moves))?;
            (report.moved, report.rows_recomputed, elapsed)
        };

        // 2. Policy for this snapshot.
        let policy = engine.policy()?;
        let cost = policy.cost_exact().unwrap_or(0);
        let min_group = policy.min_group_size().unwrap_or(0);
        let breaches = audit_policy(&policy, &db, config.k).len();

        // 3. Requests: sampled users ask for a random category.
        let n_requests = ((db.len() as f64) * config.request_rate).round() as usize;
        let users: Vec<_> = db.users().collect();
        let mut lbs_log: Vec<AnonymizedRequest> = Vec::new();
        let mut cache_hits = 0usize;
        let mut candidates_total = 0usize;
        for _ in 0..n_requests {
            let user = users[rng.gen_range(0..users.len())];
            let category = &config.categories[rng.gen_range(0..config.categories.len())];
            // lbs-lint: allow(no-unwrap-in-lib, reason = "user was just sampled from db.users(), so a location exists")
            let location = db.location(user).expect("sampled from db");
            let sr =
                ServiceRequest::new(user, location, RequestParams::from_pairs([("poi", category)]));
            // lbs-lint: allow(no-unwrap-in-lib, reason = "engine.policy() is masking and total for the current snapshot, so anonymize succeeds for a valid request")
            let ar = policy
                .anonymize(&db, &sr, RequestId(next_rid))
                .expect("valid request under a total policy");
            next_rid += 1;
            let answer = lbs.nearest_for(&ar, location);
            candidates_total += answer.candidates_fetched;
            if answer.cache_hit {
                cache_hits += 1;
            } else {
                // Only cache misses reach the LBS and can be logged there.
                lbs_log.push(ar);
            }
        }

        // 4. Frequency attack on what the LBS actually saw.
        let frequency_exposures =
            FrequencyAttacker::new(policy.clone()).full_exposures(&db, &lbs_log).len();

        snapshots.push(SnapshotMetrics {
            snapshot: t,
            moved,
            rows_recomputed,
            maintain_time,
            cost,
            min_group,
            requests: n_requests,
            cache_hits,
            avg_candidates: if n_requests == 0 {
                0.0
            } else {
                candidates_total as f64 / n_requests as f64
            },
            breaches,
            frequency_exposures,
        });
    }

    Ok(SimReport { config: config.clone(), snapshots })
}

fn timed<T, E>(f: impl FnOnce() -> Result<T, E>) -> Result<(T, Duration), E> {
    // lbs-lint: allow(no-wall-clock-in-dp, reason = "elapsed time is reported in SimReport timings only; snapshots and policies are seed-deterministic")
    let started = std::time::Instant::now();
    let value = f()?;
    Ok((value, started.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SimConfig {
        SimConfig {
            users: 2_000,
            k: 10,
            snapshots: 4,
            request_rate: 0.1,
            pois: 300,
            ..SimConfig::default()
        }
    }

    #[test]
    fn clean_run_has_no_breaches_and_sane_metrics() {
        let report = run(&small()).unwrap();
        assert_eq!(report.snapshots.len(), 4);
        assert_eq!(report.total_breaches(), 0);
        for s in &report.snapshots {
            assert!(s.min_group >= 10, "t={}: min group {}", s.snapshot, s.min_group);
            assert_eq!(s.breaches, 0);
            assert_eq!(s.frequency_exposures, 0);
            assert!(s.cost > 0);
            assert_eq!(s.requests, 200);
        }
        // Snapshot 0 computes every row; later snapshots with 1% movers
        // recompute strictly fewer.
        assert!(report.snapshots[1].rows_recomputed < report.snapshots[0].rows_recomputed);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run(&small()).unwrap();
        let b = run(&small()).unwrap();
        for (x, y) in a.snapshots.iter().zip(&b.snapshots) {
            assert_eq!(x.cost, y.cost);
            assert_eq!(x.cache_hits, y.cache_hits);
            assert_eq!(x.moved, y.moved);
        }
        let mut other = small();
        other.seed ^= 1;
        let c = run(&other).unwrap();
        assert!(
            a.snapshots.iter().zip(&c.snapshots).any(|(x, y)| x.cost != y.cost),
            "different seeds must differ somewhere"
        );
    }

    #[test]
    fn cache_absorbs_duplicates_at_high_request_rates() {
        let mut cfg = small();
        cfg.request_rate = 0.5; // lots of duplicate (cloak, V) pairs
        let report = run(&cfg).unwrap();
        let hits: usize = report.snapshots.iter().map(|s| s.cache_hits).sum();
        assert!(hits > 0, "duplicates must hit the cache");
    }

    #[test]
    fn infeasible_population_surfaces_as_core_error() {
        let mut cfg = small();
        cfg.users = 5;
        cfg.k = 100; // scaled_to(5) still emits one 10-user intersection
        assert!(matches!(run(&cfg), Err(SimError::Core(_))));
    }

    #[test]
    fn report_renders() {
        let report = run(&small()).unwrap();
        let text = report.to_string();
        assert!(text.contains("t=0"));
        assert!(text.contains("0 breaches"));
    }
}
