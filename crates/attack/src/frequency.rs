//! Frequency-counting attacks — the sender-anonymity analogue of the
//! l-diversity / t-closeness attacks on data k-anonymity (Section VII,
//! "Beyond k-anonymity").
//!
//! A policy-aware attacker who sees the LBS log for one snapshot can
//! group the anonymized requests by (cloak, parameters) and compare each
//! count against the size of the cloak's sender group. In "the (unlikely)
//! event of observing in a snapshot as many identical requests from the
//! same cloak as the number of locations residing in it", *every* group
//! member provably sent those parameters: k-anonymity of identity held,
//! yet everyone's interests leaked. Partial counts leak probabilistically
//! (`duplicates / group_size` of the members sent it).
//!
//! The paper's countermeasure is the CSP-side answer cache
//! (`lbs-query::AnswerCache`): the LBS sees each distinct (cloak, V) at
//! most once per snapshot, so every observable count is ≤ 1 < k and the
//! frequency signal vanishes. The tests here drive both directions.

use crate::PolicyAwareAttacker;
use lbs_geom::Region;
use lbs_model::{AnonymizedRequest, BulkPolicy, LocationDb, RequestParams, UserId};
use std::collections::HashMap;

/// One (cloak, parameters) class in the observed request log.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyFinding {
    /// The cloak the requests carried.
    pub region: Region,
    /// The shared request parameters.
    pub params: RequestParams,
    /// How many identical anonymized requests were observed.
    pub duplicates: usize,
    /// The policy-aware sender group of this cloak.
    pub group: Vec<UserId>,
    /// Fraction of the group that provably sent these parameters
    /// (`duplicates / |group|`; 1.0 = everyone's interests exposed).
    pub exposure: f64,
}

impl FrequencyFinding {
    /// Whether every group member's interest is fully exposed.
    pub fn fully_exposed(&self) -> bool {
        !self.group.is_empty() && self.duplicates >= self.group.len()
    }
}

/// A policy-aware attacker that additionally counts duplicate requests in
/// a snapshot's LBS log.
#[derive(Debug, Clone)]
pub struct FrequencyAttacker {
    inner: PolicyAwareAttacker,
}

impl FrequencyAttacker {
    /// Arms the attacker with the known policy.
    pub fn new(policy: BulkPolicy) -> Self {
        FrequencyAttacker { inner: PolicyAwareAttacker::new(policy) }
    }

    /// Analyzes one snapshot's observed request log. Findings are sorted
    /// by decreasing exposure; senders are assumed to issue at most one
    /// request per snapshot (the paper's assumption, reasonable for ~30 s
    /// snapshots).
    pub fn analyze(
        &self,
        db: &LocationDb,
        observed: &[AnonymizedRequest],
    ) -> Vec<FrequencyFinding> {
        let mut counts: HashMap<(Region, RequestParams), usize> = HashMap::new();
        for ar in observed {
            *counts.entry((ar.region, ar.params.clone())).or_insert(0) += 1;
        }
        let mut findings: Vec<FrequencyFinding> = counts
            .into_iter()
            .map(|((region, params), duplicates)| {
                let group = self.inner.possible_senders_of_region(db, &region);
                let exposure =
                    if group.is_empty() { 0.0 } else { duplicates as f64 / group.len() as f64 };
                FrequencyFinding { region, params, duplicates, group, exposure }
            })
            .collect();
        findings.sort_by(|a, b| b.exposure.total_cmp(&a.exposure));
        findings
    }

    /// Convenience: the findings with full interest exposure.
    pub fn full_exposures(
        &self,
        db: &LocationDb,
        observed: &[AnonymizedRequest],
    ) -> Vec<FrequencyFinding> {
        self.analyze(db, observed).into_iter().filter(FrequencyFinding::fully_exposed).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_geom::{Point, Rect};
    use lbs_model::RequestId;

    fn setup() -> (LocationDb, BulkPolicy, Region) {
        let db = LocationDb::from_rows([
            (UserId(0), Point::new(1, 1)),
            (UserId(1), Point::new(2, 2)),
            (UserId(2), Point::new(3, 3)),
        ])
        .unwrap();
        let cloak: Region = Rect::new(0, 0, 4, 4).into();
        let mut policy = BulkPolicy::new("p");
        for u in 0..3 {
            policy.assign(UserId(u), cloak);
        }
        (db, policy, cloak)
    }

    fn request(rid: u64, cloak: Region, v: &str) -> AnonymizedRequest {
        AnonymizedRequest::new(RequestId(rid), cloak, RequestParams::from_pairs([("poi", v)]))
    }

    #[test]
    fn full_duplicate_count_exposes_the_whole_group() {
        let (db, policy, cloak) = setup();
        // All 3 group members ask for the same sensitive POI.
        let log = vec![
            request(1, cloak, "campaign-hq"),
            request(2, cloak, "campaign-hq"),
            request(3, cloak, "campaign-hq"),
        ];
        let attacker = FrequencyAttacker::new(policy);
        let exposures = attacker.full_exposures(&db, &log);
        assert_eq!(exposures.len(), 1);
        assert_eq!(exposures[0].group, vec![UserId(0), UserId(1), UserId(2)]);
        assert_eq!(exposures[0].exposure, 1.0);
        // Identity 3-anonymity held throughout — the leak is the interest.
        assert_eq!(exposures[0].group.len(), 3);
    }

    #[test]
    fn partial_counts_leak_probabilistically() {
        let (db, policy, cloak) = setup();
        let log = vec![
            request(1, cloak, "campaign-hq"),
            request(2, cloak, "campaign-hq"),
            request(3, cloak, "groceries"),
        ];
        let attacker = FrequencyAttacker::new(policy);
        let findings = attacker.analyze(&db, &log);
        assert_eq!(findings.len(), 2);
        assert!((findings[0].exposure - 2.0 / 3.0).abs() < 1e-12);
        assert!(!findings[0].fully_exposed());
        assert!(attacker.full_exposures(&db, &log).is_empty());
    }

    #[test]
    fn the_answer_cache_defeats_the_attack() {
        // What the LBS logs when the CSP deduplicates per (cloak, V): each
        // class at most once. No count can reach the group size (k >= 2).
        let (db, policy, cloak) = setup();
        let deduplicated_log = vec![request(1, cloak, "campaign-hq")];
        let attacker = FrequencyAttacker::new(policy);
        let findings = attacker.analyze(&db, &deduplicated_log);
        assert_eq!(findings[0].duplicates, 1);
        assert!((findings[0].exposure - 1.0 / 3.0).abs() < 1e-12);
        assert!(attacker.full_exposures(&db, &deduplicated_log).is_empty());
    }

    #[test]
    fn empty_log_no_findings() {
        let (db, policy, _) = setup();
        let attacker = FrequencyAttacker::new(policy);
        assert!(attacker.analyze(&db, &[]).is_empty());
    }
}
