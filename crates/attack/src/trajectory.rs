//! Trajectory-aware attacks: the intersection attack the paper scopes out
//! as future work ("defending against trajectory-aware attackers … where
//! the attacker has knowledge of when multiple requests have originated
//! from the same (a priori unknown) user", Section I).
//!
//! Per-snapshot policy-aware k-anonymity does **not** compose over time:
//! if the attacker can link requests from the same pseudonymous sender
//! across snapshots (session continuity at the LBS, recurring request
//! parameters, …), the candidate-sender sets of the linked requests can
//! be intersected. Cloak groups churn as users move, so the intersection
//! shrinks — often to a single user. [`TrajectoryAttacker`] implements
//! exactly that attack; `lbs-core`'s `StickyAnonymizer` implements the
//! group-stability countermeasure and the integration tests show the
//! trade (intersection stays ≥ k, cloaks grow as cohorts disperse).

use crate::PolicyAwareAttacker;
use lbs_geom::Region;
use lbs_model::{BulkPolicy, LocationDb, UserId};

/// One observed epoch: the snapshot, the policy in force (known to the
/// policy-aware attacker), and the cloak of the linked request.
#[derive(Debug, Clone)]
pub struct LinkedObservation {
    /// The location database at this snapshot.
    pub db: LocationDb,
    /// The CSP's (known) policy for this snapshot.
    pub policy: BulkPolicy,
    /// The cloak of the linked sender's request in this snapshot.
    pub cloak: Region,
}

/// A policy-aware attacker that additionally links requests across
/// snapshots to the same unknown sender.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryAttacker;

impl TrajectoryAttacker {
    /// Creates the attacker.
    pub fn new() -> Self {
        TrajectoryAttacker
    }

    /// The candidate senders consistent with *all* linked observations:
    /// the intersection of the per-snapshot policy-aware candidate sets.
    pub fn possible_senders(&self, observations: &[LinkedObservation]) -> Vec<UserId> {
        let mut candidates: Option<Vec<UserId>> = None;
        for obs in observations {
            let epoch = PolicyAwareAttacker::new(obs.policy.clone())
                .possible_senders_of_region(&obs.db, &obs.cloak);
            candidates = Some(match candidates {
                None => epoch,
                Some(prev) => prev.into_iter().filter(|u| epoch.contains(u)).collect(),
            });
        }
        candidates.unwrap_or_default()
    }

    /// Whether linking the observations breaches sender k-anonymity even
    /// though each epoch alone may satisfy it.
    pub fn breaches(&self, observations: &[LinkedObservation], k: usize) -> bool {
        !observations.is_empty() && self.possible_senders(observations).len() < k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_geom::{Point, Rect};

    /// Two snapshots, k = 2. Alice shares her cloak with Bob at t0 and
    /// with Carol at t1 (Bob walked away, Carol walked in). Each snapshot
    /// is policy-aware 2-anonymous; the intersection is {Alice}.
    #[test]
    fn intersection_attack_defeats_per_snapshot_anonymity() {
        let k = 2;
        let west: Region = Rect::new(0, 0, 4, 8).into();
        let east: Region = Rect::new(4, 0, 8, 8).into();

        // t0: Alice & Bob in the west, Carol & Dave in the east.
        let db0 = LocationDb::from_rows([
            (UserId(0), Point::new(1, 1)), // Alice
            (UserId(1), Point::new(2, 2)), // Bob
            (UserId(2), Point::new(6, 6)), // Carol
            (UserId(3), Point::new(7, 7)), // Dave
        ])
        .unwrap();
        let mut p0 = BulkPolicy::new("t0");
        p0.assign(UserId(0), west);
        p0.assign(UserId(1), west);
        p0.assign(UserId(2), east);
        p0.assign(UserId(3), east);
        assert!(p0.min_group_size().unwrap() >= k, "t0 is 2-anonymous");

        // t1: Bob and Carol swapped sides.
        let db1 = LocationDb::from_rows([
            (UserId(0), Point::new(1, 2)),
            (UserId(1), Point::new(6, 2)),
            (UserId(2), Point::new(2, 6)),
            (UserId(3), Point::new(7, 6)),
        ])
        .unwrap();
        let mut p1 = BulkPolicy::new("t1");
        p1.assign(UserId(0), west);
        p1.assign(UserId(2), west);
        p1.assign(UserId(1), east);
        p1.assign(UserId(3), east);
        assert!(p1.min_group_size().unwrap() >= k, "t1 is 2-anonymous");

        // Alice sent linked requests from the west cloak in both epochs.
        let observations = vec![
            LinkedObservation { db: db0, policy: p0, cloak: west },
            LinkedObservation { db: db1, policy: p1, cloak: west },
        ];
        let attacker = TrajectoryAttacker::new();
        assert_eq!(attacker.possible_senders(&observations), vec![UserId(0)]);
        assert!(attacker.breaches(&observations, k), "Alice identified across epochs");
    }

    #[test]
    fn stable_groups_resist_the_intersection() {
        // When the same cohort shares the cloak in both epochs, the
        // intersection never shrinks below the cohort.
        let cloak: Region = Rect::new(0, 0, 8, 8).into();
        let db =
            LocationDb::from_rows([(UserId(0), Point::new(1, 1)), (UserId(1), Point::new(2, 2))])
                .unwrap();
        let mut policy = BulkPolicy::new("stable");
        policy.assign(UserId(0), cloak);
        policy.assign(UserId(1), cloak);
        let obs = LinkedObservation { db, policy, cloak };
        let observations = vec![obs.clone(), obs.clone(), obs];
        let attacker = TrajectoryAttacker::new();
        assert_eq!(attacker.possible_senders(&observations).len(), 2);
        assert!(!attacker.breaches(&observations, 2));
    }

    #[test]
    fn no_observations_no_candidates() {
        let attacker = TrajectoryAttacker::new();
        assert!(attacker.possible_senders(&[]).is_empty());
        assert!(!attacker.breaches(&[], 2));
    }
}
