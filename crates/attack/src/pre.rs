//! Literal Possible Reverse Engineerings (Definitions 5 and 6).
//!
//! Everywhere else in this reproduction, policy-aware sender k-anonymity
//! is decided by the *group-size shortcut*: every cloak group must hold at
//! least k users. This module implements the paper's definitions
//! **literally** — a PRE is a function from observed anonymized requests
//! to valid service requests consistent with some policy in the candidate
//! family, and k-anonymity demands k PREs whose chosen senders are
//! pairwise distinct at every request — and the tests prove the shortcut
//! equivalent to the literal definition on exhaustively checked instances.
//!
//! The subtlety the shortcut hides: a policy is a *deterministic*
//! procedure (Definition 4), so distinct observed requests can never
//! reverse-engineer to the *same* service request. Within one
//! (cloak, parameters) class a PRE must therefore assign pairwise
//! *distinct* senders (an injective choice from the cloak's group), and
//! the k PREs must additionally disagree pairwise at every request. Both
//! constraints are enforced here.

use lbs_model::{AnonymizedRequest, BulkPolicy, LocationDb, RequestId, ServiceRequest, UserId};
use std::collections::HashMap;

/// One possible reverse engineering: a choice of service request (here:
/// sender, since location and parameters are forced) per observed
/// anonymized request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pre {
    assignment: HashMap<RequestId, UserId>,
}

impl Pre {
    /// The sender this PRE assigns to `rid`.
    pub fn sender_of(&self, rid: RequestId) -> Option<UserId> {
        self.assignment.get(&rid).copied()
    }

    /// Materializes the full service request this PRE claims generated
    /// `ar` (Definition 5's `π(AR)`).
    pub fn service_request(
        &self,
        ar: &AnonymizedRequest,
        db: &LocationDb,
    ) -> Option<ServiceRequest> {
        let user = self.sender_of(ar.rid)?;
        let location = db.location(user)?;
        Some(ServiceRequest::new(user, location, ar.params.clone()))
    }
}

/// Enumerates **all** PREs of `observed` w.r.t. `db` and the singleton
/// policy family `{policy}` (the policy-aware attacker's knowledge).
///
/// Requests are grouped by (cloak, parameters); within a class the
/// assignment must be injective into the cloak's sender group. The
/// product across classes is capped at ~200k PREs — this is a
/// specification-grade oracle for tests, not a production path.
pub fn enumerate_policy_aware_pres(
    observed: &[AnonymizedRequest],
    db: &LocationDb,
    policy: &BulkPolicy,
) -> Vec<Pre> {
    // Class the observations.
    let mut classes: HashMap<(lbs_geom::Region, lbs_model::RequestParams), Vec<RequestId>> =
        HashMap::new();
    for ar in observed {
        classes.entry((ar.region, ar.params.clone())).or_default().push(ar.rid);
    }

    // Candidates per class: the policy's group for that cloak, restricted
    // to users present in the snapshot (validity w.r.t. D).
    let mut per_class: Vec<(Vec<RequestId>, Vec<UserId>)> = Vec::new();
    for ((region, _), rids) in classes {
        let group: Vec<UserId> = policy
            .iter()
            .filter(|&(user, r)| *r == region && db.contains(user))
            .map(|(user, _)| user)
            .collect();
        per_class.push((rids, group));
    }

    // Injective assignments per class, then the cross product.
    let mut pres = vec![Pre { assignment: HashMap::new() }];
    for (rids, group) in per_class {
        let class_assignments = injective_assignments(&rids, &group);
        if class_assignments.is_empty() {
            return Vec::new(); // some request has no consistent sender
        }
        let mut next = Vec::with_capacity(pres.len() * class_assignments.len());
        for base in &pres {
            for extension in &class_assignments {
                let mut merged = base.clone();
                merged.assignment.extend(extension.iter().map(|(&r, &u)| (r, u)));
                next.push(merged);
            }
        }
        assert!(next.len() <= 200_000, "PRE enumeration too large; shrink the instance");
        pres = next;
    }
    pres
}

/// All injective maps from `rids` into `group`.
fn injective_assignments(rids: &[RequestId], group: &[UserId]) -> Vec<HashMap<RequestId, UserId>> {
    fn go(
        rids: &[RequestId],
        group: &[UserId],
        used: &mut Vec<bool>,
        current: &mut HashMap<RequestId, UserId>,
        out: &mut Vec<HashMap<RequestId, UserId>>,
    ) {
        let Some((&rid, rest)) = rids.split_first() else {
            out.push(current.clone());
            return;
        };
        for (i, &user) in group.iter().enumerate() {
            if used[i] {
                continue;
            }
            used[i] = true;
            current.insert(rid, user);
            go(rest, group, used, current, out);
            current.remove(&rid);
            used[i] = false;
        }
    }
    let mut out = Vec::new();
    go(rids, group, &mut vec![false; group.len()], &mut HashMap::new(), &mut out);
    out
}

/// Definition 6, literally: do there exist k PREs `π₁..π_k` such that for
/// every observed request the assigned senders are pairwise distinct?
///
/// Exponential search over the enumerated PREs with early pruning;
/// test-oracle only.
pub fn literal_k_anonymity(
    observed: &[AnonymizedRequest],
    db: &LocationDb,
    policy: &BulkPolicy,
    k: usize,
) -> bool {
    if observed.is_empty() || k <= 1 {
        return !enumerate_policy_aware_pres(observed, db, policy).is_empty()
            || observed.is_empty();
    }
    let pres = enumerate_policy_aware_pres(observed, db, policy);
    let rids: Vec<RequestId> = observed.iter().map(|ar| ar.rid).collect();

    fn compatible(a: &Pre, b: &Pre, rids: &[RequestId]) -> bool {
        rids.iter().all(|&rid| a.sender_of(rid) != b.sender_of(rid))
    }

    fn search(
        pres: &[Pre],
        rids: &[RequestId],
        chosen: &mut Vec<usize>,
        start: usize,
        k: usize,
    ) -> bool {
        if chosen.len() == k {
            return true;
        }
        for i in start..pres.len() {
            if chosen.iter().all(|&j| compatible(&pres[i], &pres[j], rids)) {
                chosen.push(i);
                if search(pres, rids, chosen, i + 1, k) {
                    return true;
                }
                chosen.pop();
            }
        }
        false
    }

    search(&pres, &rids, &mut Vec::new(), 0, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_geom::{Point, Rect, Region};
    use lbs_model::RequestParams;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn params(v: &str) -> RequestParams {
        RequestParams::from_pairs([("poi", v)])
    }

    fn request(rid: u64, region: Region, v: &str) -> AnonymizedRequest {
        AnonymizedRequest::new(RequestId(rid), region, params(v))
    }

    #[test]
    fn pres_are_injective_within_a_class() {
        // Group {u0, u1} on one cloak; two identical-V requests observed.
        let db =
            LocationDb::from_rows([(UserId(0), Point::new(0, 0)), (UserId(1), Point::new(1, 1))])
                .unwrap();
        let cloak: Region = Rect::new(0, 0, 2, 2).into();
        let mut policy = BulkPolicy::new("p");
        policy.assign(UserId(0), cloak);
        policy.assign(UserId(1), cloak);
        let observed = vec![request(1, cloak, "a"), request(2, cloak, "a")];
        let pres = enumerate_policy_aware_pres(&observed, &db, &policy);
        // Exactly the two injective assignments (u0,u1) and (u1,u0).
        assert_eq!(pres.len(), 2);
        for pre in &pres {
            assert_ne!(pre.sender_of(RequestId(1)), pre.sender_of(RequestId(2)));
            let sr = pre.service_request(&observed[0], &db).unwrap();
            assert!(sr.is_valid(&db));
            assert!(observed[0].masks(&sr), "PRE output masks the observation");
        }
        // With both requests pinned to complementary senders, no two PREs
        // disagree everywhere twice over: 2-anonymity still holds
        // (π1=(u0,u1), π2=(u1,u0) are pairwise distinct at each request).
        assert!(literal_k_anonymity(&observed, &db, &policy, 2));
        assert!(!literal_k_anonymity(&observed, &db, &policy, 3));
    }

    #[test]
    fn literal_definition_matches_group_size_shortcut() {
        // Exhaustive cross-validation on random small instances: the
        // literal Definition 6 agrees with "every observed cloak's group
        // has >= k members".
        let mut rng = StdRng::seed_from_u64(0xDEF6);
        for trial in 0..40 {
            let n = rng.gen_range(2..=6);
            let db =
                LocationDb::from_rows((0..n).map(|i| {
                    (UserId(i as u64), Point::new(rng.gen_range(0..8), rng.gen_range(0..8)))
                }))
                .unwrap();
            // Random policy: split users across 1-2 cloaks (not necessarily
            // anonymous!).
            let west: Region = Rect::new(0, 0, 8, 8).into();
            let east: Region = Rect::new(0, 0, 16, 16).into();
            let mut policy = BulkPolicy::new("random");
            for user in db.users() {
                policy.assign(user, if rng.gen_bool(0.5) { west } else { east });
            }
            // A random subset of users sends one same-V request each.
            let mut observed = Vec::new();
            let mut rid = 0u64;
            let mut observed_regions = Vec::new();
            for (user, _) in db.iter() {
                if rng.gen_bool(0.6) {
                    let cloak = *policy.cloak_of(user).unwrap();
                    observed.push(request(rid, cloak, "x"));
                    observed_regions.push(cloak);
                    rid += 1;
                }
            }
            for k in 1..=4 {
                let literal = literal_k_anonymity(&observed, &db, &policy, k);
                // Shortcut: every *observed* cloak's group must have >= k
                // members (unobserved cloaks can't breach anything).
                let groups = policy.groups();
                let shortcut =
                    observed_regions.iter().all(|r| groups.get(r).is_some_and(|g| g.len() >= k));
                let shortcut = shortcut || observed.is_empty();
                assert_eq!(
                    literal, shortcut,
                    "trial {trial} k={k}: literal {literal} != shortcut {shortcut}"
                );
            }
        }
    }

    #[test]
    fn example_1_has_a_unique_pre() {
        // Carol's singleton group: exactly one PRE, so 2-anonymity fails
        // by the literal definition too.
        let db =
            LocationDb::from_rows([(UserId(2), Point::new(1, 3)), (UserId(0), Point::new(1, 1))])
                .unwrap();
        let r3: Region = Rect::new(0, 2, 2, 4).into();
        let mut policy = BulkPolicy::new("example1");
        policy.assign(UserId(2), r3);
        policy.assign(UserId(0), Rect::new(0, 0, 2, 2).into());
        let observed = vec![request(169, r3, "rest")];
        let pres = enumerate_policy_aware_pres(&observed, &db, &policy);
        assert_eq!(pres.len(), 1);
        assert_eq!(pres[0].sender_of(RequestId(169)), Some(UserId(2)));
        assert!(!literal_k_anonymity(&observed, &db, &policy, 2));
    }

    #[test]
    fn unsatisfiable_observations_have_no_pre() {
        // An observed cloak no user maps to: zero PREs.
        let db = LocationDb::from_rows([(UserId(0), Point::new(0, 0))]).unwrap();
        let mut policy = BulkPolicy::new("p");
        policy.assign(UserId(0), Rect::new(0, 0, 2, 2).into());
        let phantom: Region = Rect::new(8, 8, 12, 12).into();
        let observed = vec![request(1, phantom, "x")];
        assert!(enumerate_policy_aware_pres(&observed, &db, &policy).is_empty());
        assert!(!literal_k_anonymity(&observed, &db, &policy, 2));
    }
}
