//! Attacker implementations: possible reverse engineerings (PREs) and
//! breach detection (Section III of the paper).
//!
//! The paper models an attacker as an unbounded function of what it can
//! see. Two extremes are studied:
//!
//! * A **policy-unaware** attacker (relative to a cloak family `C`) knows
//!   only that *some* masking policy over `C` produced the observed
//!   request. Reverse-engineering a cloak `ρ` therefore yields every user
//!   located inside `ρ` — for each of them some policy in `P_C` maps them
//!   to `ρ`.
//! * A **policy-aware** attacker knows the exact policy `P`. Its PREs of a
//!   request with cloak `ρ` are exactly the users that `P` maps to `ρ`.
//!
//! Sender k-anonymity (Definition 6) holds when the candidate-sender sets
//! stay at size ≥ k. [`PolicyUnawareAttacker`] and [`PolicyAwareAttacker`]
//! compute those sets, and [`audit_policy`] sweeps a whole bulk policy for
//! breaches, reproducing Example 1 ("if this attacker observes an LBS
//! request with cloak R₃, he can identify the sender as C!").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frequency;
mod pre;
mod trajectory;

pub use frequency::{FrequencyAttacker, FrequencyFinding};
pub use pre::{enumerate_policy_aware_pres, literal_k_anonymity, Pre};
pub use trajectory::{LinkedObservation, TrajectoryAttacker};

use lbs_geom::Region;
use lbs_model::{AnonymizedRequest, BulkPolicy, LocationDb, UserId};

/// The policy-unaware attacker of Section III, relative to the family of
/// all masking policies over some cloak family containing the observed
/// cloaks.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolicyUnawareAttacker;

impl PolicyUnawareAttacker {
    /// Creates the attacker.
    pub fn new() -> Self {
        PolicyUnawareAttacker
    }

    /// Candidate senders of `ar`: every user whose location lies inside
    /// the cloak. (For each such user there exists a masking policy
    /// mapping their service request to `ar`, so each yields a PRE.)
    pub fn possible_senders(&self, db: &LocationDb, ar: &AnonymizedRequest) -> Vec<UserId> {
        self.possible_senders_of_region(db, &ar.region)
    }

    /// As [`Self::possible_senders`], from a bare cloak region.
    pub fn possible_senders_of_region(&self, db: &LocationDb, region: &Region) -> Vec<UserId> {
        db.users_in(region)
    }

    /// Whether observing `ar` breaches sender k-anonymity for this
    /// attacker class.
    pub fn breaches(&self, db: &LocationDb, ar: &AnonymizedRequest, k: usize) -> bool {
        self.possible_senders(db, ar).len() < k
    }
}

/// The policy-aware attacker of Section III: knows the complete bulk
/// policy in use (Saltzer: "the design is not secret").
#[derive(Debug, Clone)]
pub struct PolicyAwareAttacker {
    policy: BulkPolicy,
}

impl PolicyAwareAttacker {
    /// Arms the attacker with the CSP's exact policy (obtained by hacking,
    /// subpoena, or from a disgruntled ex-employee, per the paper's threat
    /// model).
    pub fn new(policy: BulkPolicy) -> Self {
        PolicyAwareAttacker { policy }
    }

    /// Candidate senders of a request with cloak `region`: exactly the
    /// users the known policy maps to this cloak. Every PRE w.r.t. `{P}`
    /// must pick its sender here, and every such user yields a PRE.
    pub fn possible_senders_of_region(&self, db: &LocationDb, region: &Region) -> Vec<UserId> {
        let mut out: Vec<UserId> = self
            .policy
            .iter()
            .filter(|&(user, r)| r == region && db.contains(user))
            .map(|(user, _)| user)
            .collect();
        out.sort_unstable();
        out
    }

    /// Candidate senders of `ar`.
    pub fn possible_senders(&self, db: &LocationDb, ar: &AnonymizedRequest) -> Vec<UserId> {
        self.possible_senders_of_region(db, &ar.region)
    }

    /// Whether observing `ar` breaches sender k-anonymity.
    pub fn breaches(&self, db: &LocationDb, ar: &AnonymizedRequest, k: usize) -> bool {
        self.possible_senders(db, ar).len() < k
    }
}

/// One sender-anonymity breach found by [`audit_policy`].
#[derive(Debug, Clone, PartialEq)]
pub struct Breach {
    /// The cloak whose observation narrows the sender set below k.
    pub region: Region,
    /// The candidate senders a policy-aware attacker is left with.
    pub candidates: Vec<UserId>,
}

/// Audits `policy` against a policy-aware attacker on snapshot `db`:
/// returns every cloak whose candidate-sender set is smaller than k.
///
/// An empty result certifies policy-aware sender k-anonymity of the bulk
/// policy (every observable request keeps ≥ k possible senders); a
/// nonempty result reproduces the Example-1 style breach.
pub fn audit_policy(policy: &BulkPolicy, db: &LocationDb, k: usize) -> Vec<Breach> {
    let mut breaches: Vec<Breach> = policy
        .groups()
        .into_iter()
        .filter(|(_, members)| members.len() < k)
        .map(|(region, candidates)| Breach { region, candidates })
        .collect();
    breaches.sort_by(|a, b| a.candidates.cmp(&b.candidates));
    let _ = db; // snapshot retained in the signature for symmetry/extension
    breaches
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbs_geom::{Point, Rect};
    use lbs_model::{RequestId, RequestParams};

    fn table1() -> LocationDb {
        LocationDb::from_rows([
            (UserId(0), Point::new(1, 1)), // A
            (UserId(1), Point::new(1, 2)), // B
            (UserId(2), Point::new(1, 3)), // C
            (UserId(3), Point::new(3, 1)), // S
            (UserId(4), Point::new(3, 3)), // T
        ])
        .unwrap()
    }

    /// The 2-inside policy of Example 1 (adapted to our half-open grid):
    /// A,B → R1, C → R3, S,T → R2.
    fn example1_policy() -> BulkPolicy {
        let mut p = BulkPolicy::new("2-inside-example1");
        let r1: Region = Rect::new(0, 0, 2, 3).into();
        let r3: Region = Rect::new(0, 3, 2, 4).into();
        let r2: Region = Rect::new(2, 0, 4, 4).into();
        p.assign(UserId(0), r1);
        p.assign(UserId(1), r1);
        p.assign(UserId(2), r3);
        p.assign(UserId(3), r2);
        p.assign(UserId(4), r2);
        p
    }

    #[test]
    fn example_6_policy_unaware_sees_k_candidates() {
        // The policy-unaware attacker reverse-engineers R3's request to all
        // users inside R3 — for Example 6 that is 3 users when R3 is the
        // west half; with the Example-1 cloaks, every cloak contains ≥ 2.
        let db = table1();
        let attacker = PolicyUnawareAttacker::new();
        let r3_wide: Region = Rect::new(0, 0, 2, 4).into(); // Example 3's R3
        let ar = AnonymizedRequest::new(RequestId(169), r3_wide, RequestParams::default());
        let senders = attacker.possible_senders(&db, &ar);
        assert_eq!(senders, vec![UserId(0), UserId(1), UserId(2)], "A, B, C all inside");
        assert!(!attacker.breaches(&db, &ar, 2));
    }

    #[test]
    fn example_1_policy_aware_identifies_c() {
        let db = table1();
        let policy = example1_policy();
        let attacker = PolicyAwareAttacker::new(policy.clone());
        let r3: Region = Rect::new(0, 3, 2, 4).into();
        let ar = AnonymizedRequest::new(RequestId(169), r3, RequestParams::default());
        // The policy-unaware attacker sees just C inside this tight cloak
        // too — but the *paper's* breach is that even with the Example-3
        // style generous cloaks the group structure gives C away. Here the
        // group of R3 under the known policy is {C}: identified.
        assert_eq!(attacker.possible_senders(&db, &ar), vec![UserId(2)]);
        assert!(attacker.breaches(&db, &ar, 2));
    }

    #[test]
    fn policy_aware_shrinks_candidates_below_policy_unaware() {
        // Proposition 1's strictness: same cloak, same DB — the aware
        // attacker's set is a subset of the unaware one's.
        let db = table1();
        let mut policy = BulkPolicy::new("p");
        let west: Region = Rect::new(0, 0, 2, 4).into();
        policy.assign(UserId(0), west); // only A is mapped to `west`
        policy.assign(UserId(1), Rect::new(0, 0, 4, 4).into());
        policy.assign(UserId(2), Rect::new(0, 0, 4, 4).into());
        let aware = PolicyAwareAttacker::new(policy);
        let unaware = PolicyUnawareAttacker::new();
        let aware_set = aware.possible_senders_of_region(&db, &west);
        let unaware_set = unaware.possible_senders_of_region(&db, &west);
        assert_eq!(aware_set, vec![UserId(0)]);
        assert_eq!(unaware_set.len(), 3);
        assert!(aware_set.iter().all(|u| unaware_set.contains(u)));
    }

    #[test]
    fn audit_reports_small_groups_only() {
        let db = table1();
        let breaches = audit_policy(&example1_policy(), &db, 2);
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].candidates, vec![UserId(2)], "C's singleton group");
        assert!(audit_policy(&example1_policy(), &db, 1).is_empty());
    }

    #[test]
    fn attacker_ignores_users_absent_from_snapshot() {
        let db = table1();
        let mut policy = example1_policy();
        policy.assign(UserId(99), Rect::new(0, 3, 2, 4).into()); // ghost user
        let attacker = PolicyAwareAttacker::new(policy);
        let r3: Region = Rect::new(0, 3, 2, 4).into();
        let senders = attacker.possible_senders_of_region(&db, &r3);
        assert_eq!(senders, vec![UserId(2)], "ghost filtered by validity w.r.t. D");
    }
}
